// Package replica is the evidence-journal replication layer: it
// streams every WAL record a provider shard journals to R-1 follower
// replicas over internal/transport, and lets the provider delay its
// protocol acks — in particular the NRR signature at upload-binding —
// until a write quorum of replicas holds the record durably. The
// journal-before-ack contract (DESIGN.md §7) becomes
// journal-on-quorum-before-ack: losing any single node no longer loses
// a signed receipt, because every acked record exists on at least
// quorum machines and a Provider recovered over a follower's journal
// reaches the same dispute verdicts as the leader would have.
//
// The design is pull-from-WAL: the leader's per-follower streamer
// reads its own journal by LSN range (wal.ReadBatchFromLSN) starting
// at the follower's durable high-water mark, copying bounded batches
// out under the journal lock and sending with the lock released — a
// stalled follower connection can wedge its own stream but never the
// leader's appends. Live streaming, restart
// catch-up and anti-entropy backfill are therefore ONE mechanism that
// differs only in how far behind the follower is — a killed and
// restarted follower reports its high-water mark in its hello frame
// and the stream resumes exactly there, with no operator action. When
// the mark has fallen below the leader's compaction horizon the
// streamer ships the leader's checkpoint snapshot instead
// (wal.InstallSnapshot) and resumes from the snapshot LSN.
//
// Frames are length-delimited transport messages:
//
//	hello    follower→leader  durable high-water mark, first frame on a conn
//	append   leader→follower  one journal record with its LSN
//	ack      follower→leader  high-water mark after a durable append
//	probe    leader→follower  liveness + high-water refresh (re-acked)
//	snapshot leader→follower  checkpoint payload + LSN (compacted catch-up)
package replica

import (
	"fmt"
	"sync"

	"repro/internal/faultpoint"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Replication faultpoints, exercised by the chaos suite. ack.drop and
// follower.crash fire on the follower side of the stream (after and
// before the durable append, respectively); net.partition fires on the
// leader side before each send. A Kill arm simulates that node dying
// mid-replication: the goroutine serving the stream recovers the
// crash, abandons the connection, and the survivors must still satisfy
// (or provably fail) the write quorum.
var (
	fpAckDrop       = faultpoint.Register("replica.ack.drop")
	fpFollowerCrash = faultpoint.Register("replica.follower.crash")
	fpNetPartition  = faultpoint.Register("replica.net.partition")
)

const replMagic = "tpnr-repl-v1"

// Frame types.
const (
	frHello    uint8 = 1
	frAppend   uint8 = 2
	frAck      uint8 = 3
	frProbe    uint8 = 4
	frSnapshot uint8 = 5
)

// frame is the decoded form of one replication message.
type frame struct {
	Kind    uint8
	LSN     uint64 // hello/ack: high-water mark; append/snapshot: record/boundary LSN
	Payload []byte // append: journal record; snapshot: checkpoint payload
}

func encodeFrame(f *frame) []byte {
	e := wire.NewEncoder(32 + len(f.Payload))
	e.String(replMagic)
	e.U8(f.Kind)
	e.U64(f.LSN)
	e.Bytes32(f.Payload)
	return e.Bytes()
}

func decodeFrame(b []byte) (*frame, error) {
	d := wire.NewDecoder(b)
	if magic := d.String(); magic != replMagic {
		return nil, fmt.Errorf("replica: bad frame magic %q", magic)
	}
	f := &frame{}
	f.Kind = d.U8()
	f.LSN = d.U64()
	f.Payload = d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("replica: malformed frame: %v", err)
	}
	return f, nil
}

// recoverCrash converts a faultpoint kill on the current goroutine
// into an error — the replication goroutines host chaos kill sites,
// and "this node died here" must read as a broken stream to the peer,
// not as a crashed test process.
func recoverCrash(err *error) {
	if r := recover(); r != nil {
		c, ok := r.(*faultpoint.Crash)
		if !ok {
			panic(r)
		}
		*err = c
	}
}

// Follower owns one replica's journal and applies the leader's stream
// to it. The journal is an ordinary wal.WAL with its own directory and
// sync policy: a record is acked only once Append returned, so an ack
// carries the same durability promise the leader's own journal gives —
// that is what makes quorum acks count toward the dispute guarantee.
type Follower struct {
	w *wal.WAL

	// mu serializes the apply path (high-water check + Append, and
	// snapshot installs) across connections: a redialing leader can
	// briefly leave a displaced ServeConn goroutine racing the new
	// one, and an unserialized check-then-append would let both
	// observe hw=N and append the same leader record twice — the
	// follower journal would silently stop being a prefix of the
	// leader's history.
	mu sync.Mutex
}

// NewFollower wraps a follower journal.
func NewFollower(w *wal.WAL) *Follower { return &Follower{w: w} }

// HW reports the follower's durable high-water mark (its journal LSN).
func (f *Follower) HW() uint64 { return f.w.LSN() }

// applyAppend applies one leader append under f.mu — the check of the
// current mark and the conditional Append are one atomic step — and
// returns the resulting durable high-water mark. Duplicates (leader
// resend window) and gaps (out-of-order arrival) are not applied; the
// returned mark re-acks the current position so the leader resumes
// from there.
func (f *Follower) applyAppend(fr *frame) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	hw := f.w.LSN()
	if fr.LSN == hw+1 {
		if err := f.w.Append(fr.Payload); err != nil {
			return hw, fmt.Errorf("replica: applying LSN %d: %w", fr.LSN, err)
		}
		return fr.LSN, nil
	}
	return hw, nil
}

// applySnapshot installs a leader checkpoint under f.mu and returns
// the journal's resulting high-water mark.
func (f *Follower) applySnapshot(fr *frame) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.w.InstallSnapshot(fr.Payload, fr.LSN); err != nil {
		return 0, fmt.Errorf("replica: installing snapshot at LSN %d: %w", fr.LSN, err)
	}
	return f.w.LSN(), nil
}

// ServeConn speaks the follower side of the replication protocol on
// one leader connection until the connection breaks (or a chaos kill
// simulates this replica dying). Appends are applied strictly in LSN
// order: a duplicate is re-acked, a gap is NOT applied (the current
// mark is re-acked so the leader resends) — so the follower journal is
// always a prefix of the leader's history and recovery over it is
// byte-identical to recovering the leader at that point in time.
func (f *Follower) ServeConn(conn transport.Conn) (err error) {
	defer recoverCrash(&err)
	hw := f.w.LSN()
	if err := conn.Send(encodeFrame(&frame{Kind: frHello, LSN: hw})); err != nil {
		return fmt.Errorf("replica: sending hello: %w", err)
	}
	for {
		raw, err := conn.Recv()
		if err != nil {
			return err
		}
		fr, err := decodeFrame(raw)
		if err != nil {
			return err
		}
		switch fr.Kind {
		case frAppend:
			faultpoint.Hit(fpFollowerCrash)
			hw, err = f.applyAppend(fr)
			if err != nil {
				return err
			}
			if ferr := faultpoint.HitErr(fpAckDrop); ferr != nil {
				continue // record is durable; the ack is lost in transit
			}
			if err := conn.Send(encodeFrame(&frame{Kind: frAck, LSN: hw})); err != nil {
				return err
			}
		case frSnapshot:
			hw, err = f.applySnapshot(fr)
			if err != nil {
				return err
			}
			if err := conn.Send(encodeFrame(&frame{Kind: frAck, LSN: hw})); err != nil {
				return err
			}
		case frProbe:
			if err := conn.Send(encodeFrame(&frame{Kind: frAck, LSN: f.w.LSN()})); err != nil {
				return err
			}
		default:
			return fmt.Errorf("replica: unexpected frame kind %d from leader", fr.Kind)
		}
	}
}

// Loopback returns a Dialer that serves f in-process over an
// in-memory pipe on every dial — the single-machine deployment shape
// where followers are separate journals (separate disks, surviving
// independent corruption) but not separate processes. Each serving
// goroutine exits when the leader closes its end.
func Loopback(f *Follower) Dialer {
	return func() (transport.Conn, error) {
		leader, server := transport.Pipe(64)
		go func() {
			f.ServeConn(server)
			server.Close()
		}()
		return leader, nil
	}
}

// Host runs a follower behind a transport listener: each accepted
// connection is served until it breaks, newest connection wins (a
// re-dialing leader displaces the stale stream). Close stops the
// accept loop and severs the active stream.
type Host struct {
	ln transport.Listener
	f  *Follower

	mu   sync.Mutex
	cur  transport.Conn
	done bool
	wg   sync.WaitGroup
}

// Serve starts the accept loop for f on ln and returns immediately.
func Serve(ln transport.Listener, f *Follower) *Host {
	h := &Host{ln: ln, f: f}
	h.wg.Add(1)
	go h.acceptLoop()
	return h
}

func (h *Host) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		h.mu.Lock()
		if h.done {
			h.mu.Unlock()
			conn.Close()
			return
		}
		if h.cur != nil {
			h.cur.Close()
		}
		h.cur = conn
		h.mu.Unlock()
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.f.ServeConn(conn)
			conn.Close()
		}()
	}
}

// Close stops accepting leader connections and severs the active one.
func (h *Host) Close() error {
	h.mu.Lock()
	h.done = true
	cur := h.cur
	h.cur = nil
	h.mu.Unlock()
	err := h.ln.Close()
	if cur != nil {
		cur.Close()
	}
	h.wg.Wait()
	return err
}
