package replica

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wal"
)

// fastOpts keeps the tests snappy: tight ack timeout and repair
// cadence, private registry so parallel tests don't collide on metric
// names.
func fastOpts(name string) Options {
	return Options{
		Quorum:         2,
		AckTimeout:     400 * time.Millisecond,
		RepairInterval: 20 * time.Millisecond,
		DialBackoff:    5 * time.Millisecond,
		Registry:       obs.NewRegistry(),
		Name:           name,
	}
}

func openWAL(t *testing.T, dir string) *wal.WAL {
	t.Helper()
	w, err := wal.Open(dir, wal.Options{Policy: wal.SyncAlways})
	if err != nil {
		t.Fatalf("wal.Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// cluster is a leader WAL plus n follower hosts on an in-memory
// network, the shape deploy builds per shard.
type cluster struct {
	leader    *wal.WAL
	followers []*wal.WAL
	hosts     []*Host
	dialers   []Dialer
	net       *transport.Network
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	dir := t.TempDir()
	c := &cluster{net: transport.NewNetwork()}
	c.leader = openWAL(t, filepath.Join(dir, "leader"))
	for i := 0; i < n; i++ {
		fw := openWAL(t, filepath.Join(dir, fmt.Sprintf("replica-%02d", i)))
		addr := fmt.Sprintf("replica-%02d", i)
		ln, err := c.net.Listen(addr)
		if err != nil {
			t.Fatalf("listen %s: %v", addr, err)
		}
		host := Serve(ln, NewFollower(fw))
		t.Cleanup(func() { host.Close() })
		c.followers = append(c.followers, fw)
		c.hosts = append(c.hosts, host)
		c.dialers = append(c.dialers, func() (transport.Conn, error) { return c.net.Dial(addr) })
	}
	return c
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQuorumReplicate is the happy path: every append gathers the
// write quorum, Replicate returns promptly, and both followers end up
// byte-identical to the leader.
func TestQuorumReplicate(t *testing.T) {
	leakcheck.At(t)
	c := newCluster(t, 2)
	g := NewGroup(c.leader, c.dialers, fastOpts("t_quorum"))
	defer g.Close()

	var recs [][]byte
	for i := 0; i < 10; i++ {
		rec := []byte(fmt.Sprintf("record-%d", i))
		recs = append(recs, rec)
		lsn, err := c.leader.AppendLSN(rec)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := g.Replicate(lsn); err != nil {
			t.Fatalf("replicate LSN %d: %v", lsn, err)
		}
	}
	if err := g.Quorum(); err != nil {
		t.Fatalf("quorum degraded on healthy cluster: %v", err)
	}
	waitFor(t, "full convergence", g.Converged)
	for i, fw := range c.followers {
		var got [][]byte
		if err := fw.Replay(func(rec []byte) error {
			got = append(got, append([]byte(nil), rec...))
			return nil
		}); err != nil {
			t.Fatalf("replaying follower %d: %v", i, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("follower %d has %d records, want %d", i, len(got), len(recs))
		}
		for j := range recs {
			if !bytes.Equal(got[j], recs[j]) {
				t.Fatalf("follower %d record %d = %q, want %q", i, j, got[j], recs[j])
			}
		}
	}
}

// TestQuorumTimeoutDegrades: with no reachable followers the first
// Replicate must fail with ErrNoQuorum within the ack timeout, and
// later calls must drain fast (no per-append stall while degraded).
func TestQuorumTimeoutDegrades(t *testing.T) {
	leakcheck.At(t)
	leader := openWAL(t, t.TempDir())
	dead := func() (transport.Conn, error) { return nil, errors.New("unreachable") }
	g := NewGroup(leader, []Dialer{dead, dead}, fastOpts("t_timeout"))
	defer g.Close()

	lsn, err := leader.AppendLSN([]byte("rec"))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Replicate(lsn); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("Replicate with no followers = %v, want ErrNoQuorum", err)
	}
	if g.Quorum() == nil {
		t.Fatal("group not degraded after quorum timeout")
	}
	lsn2, _ := leader.AppendLSN([]byte("rec2"))
	start := time.Now()
	if err := g.Replicate(lsn2); err != nil {
		t.Fatalf("degraded Replicate should drain, got %v", err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("degraded Replicate stalled %v; drain mode must not wait", d)
	}
}

// TestFollowerRestartConverges kills one follower host mid-stream,
// proves the quorum survives on the other, then restarts the dead
// follower over its surviving journal and asserts anti-entropy
// backfills it to the leader's LSN and clears nothing it shouldn't —
// all with no operator action beyond restarting the process.
func TestFollowerRestartConverges(t *testing.T) {
	leakcheck.At(t)
	c := newCluster(t, 2)
	g := NewGroup(c.leader, c.dialers, fastOpts("t_restart"))
	defer g.Close()

	lsn, _ := c.leader.AppendLSN([]byte("before"))
	if err := g.Replicate(lsn); err != nil {
		t.Fatalf("initial replicate: %v", err)
	}

	// Kill follower 0; quorum 2-of-3 must still hold via follower 1.
	c.hosts[0].Close()
	for i := 0; i < 5; i++ {
		l, _ := c.leader.AppendLSN([]byte(fmt.Sprintf("during-%d", i)))
		if err := g.Replicate(l); err != nil {
			t.Fatalf("replicate with one dead follower: %v", err)
		}
	}

	// Restart follower 0 on the same journal; the hello carries its old
	// mark and the streamer backfills the gap.
	ln, err := c.net.Listen("replica-00")
	if err != nil {
		t.Fatalf("relisten: %v", err)
	}
	host := Serve(ln, NewFollower(c.followers[0]))
	defer host.Close()
	waitFor(t, "restarted follower convergence", g.Converged)
	if hw, lsn := g.FollowerHW(0), c.leader.LSN(); hw != lsn {
		t.Fatalf("follower 0 hw %d != leader LSN %d after restart", hw, lsn)
	}
}

// TestSnapshotCatchUp: a follower whose mark fell below the leader's
// compaction horizon is bootstrapped from the leader checkpoint and
// then streamed the live tail.
func TestSnapshotCatchUp(t *testing.T) {
	leakcheck.At(t)
	dir := t.TempDir()
	leader := openWAL(t, filepath.Join(dir, "leader"))
	for i := 0; i < 8; i++ {
		if _, err := leader.AppendLSN([]byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	state := []byte("snapshot-state")
	if _, err := leader.Checkpoint(state); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	lastLSN := uint64(0)
	for i := 0; i < 3; i++ {
		l, err := leader.AppendLSN([]byte(fmt.Sprintf("tail-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lastLSN = l
	}

	// Fresh follower at LSN 0 — strictly below the compaction horizon.
	net := transport.NewNetwork()
	fw := openWAL(t, filepath.Join(dir, "replica-00"))
	ln, _ := net.Listen("f0")
	host := Serve(ln, NewFollower(fw))
	defer host.Close()

	opt := fastOpts("t_snapshot")
	opt.Quorum = 2
	g := NewGroup(leader, []Dialer{func() (transport.Conn, error) { return net.Dial("f0") }}, opt)
	defer g.Close()

	waitFor(t, "snapshot catch-up", func() bool { return g.FollowerHW(0) == lastLSN })
	payload, ckLSN, ok := fw.LoadCheckpoint()
	if !ok {
		t.Fatal("follower has no installed checkpoint")
	}
	if !bytes.Equal(payload, state) {
		t.Fatalf("follower checkpoint payload %q, want %q", payload, state)
	}
	if ckLSN != 8 {
		t.Fatalf("follower checkpoint LSN %d, want 8", ckLSN)
	}
	var tail [][]byte
	if err := fw.ReplayTail(func(rec []byte) error {
		tail = append(tail, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatalf("follower tail replay: %v", err)
	}
	if len(tail) != 3 || string(tail[0]) != "tail-0" {
		t.Fatalf("follower tail %d records (first %q), want the 3 live ones", len(tail), tail)
	}
}

// TestCrashFaultpointRecovery arms each replica faultpoint as a
// repeating kill, checks the quorum outcome the fault implies, then
// disarms and shows the anti-entropy loop converges the followers and
// restores quorum service — the repair path needs no restart at all
// when the fault was transient.
//
// replica.ack.drop is the interesting one: the follower crashes AFTER
// its durable append, so although every in-band ack is lost, the
// leader learns the true high-water mark from the hello on each
// redial and the quorum is genuinely (and correctly) satisfied.
func TestCrashFaultpointRecovery(t *testing.T) {
	for _, tc := range []struct {
		fp         string
		wantQuorum bool // Replicate succeeds even while the fault fires
	}{
		{fpFollowerCrash, false},
		{fpAckDrop, true},
		{fpNetPartition, false},
	} {
		t.Run(tc.fp, func(t *testing.T) {
			leakcheck.At(t)
			defer faultpoint.Reset()
			c := newCluster(t, 2)
			g := NewGroup(c.leader, c.dialers, fastOpts("t_crash_"+sanitize(tc.fp)))
			defer g.Close()

			lsn, _ := c.leader.AppendLSN([]byte("healthy"))
			if err := g.Replicate(lsn); err != nil {
				t.Fatalf("healthy replicate: %v", err)
			}

			faultpoint.Arm(tc.fp, faultpoint.Kill(tc.fp))
			lsn, _ = c.leader.AppendLSN([]byte("faulted"))
			err := g.Replicate(lsn)
			if tc.wantQuorum && err != nil {
				t.Fatalf("Replicate under %s = %v, want durable-despite-fault success", tc.fp, err)
			}
			if !tc.wantQuorum && !errors.Is(err, ErrNoQuorum) {
				t.Fatalf("Replicate under %s = %v, want ErrNoQuorum", tc.fp, err)
			}

			faultpoint.Reset()
			waitFor(t, "quorum restored", func() bool { return g.Quorum() == nil })
			waitFor(t, "post-fault convergence", g.Converged)
			lsn, _ = c.leader.AppendLSN([]byte("recovered"))
			if err := g.Replicate(lsn); err != nil {
				t.Fatalf("replicate after repair: %v", err)
			}
		})
	}
}

func sanitize(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c == '.' {
			b[i] = '_'
		}
	}
	return string(b)
}

// TestStalledFollowerDoesNotBlockAppends pins the no-network-IO-under-
// the-WAL-lock rule: a follower connection that accepts the dial, says
// hello, and then never reads another frame (the black-holed-peer
// shape — Sends to it block forever once the buffer fills) must wedge
// only its own stream. Leader appends must keep completing; before the
// batched read, the streamer sent inside the journal lock and one such
// follower froze every AppendLSN on the shard.
func TestStalledFollowerDoesNotBlockAppends(t *testing.T) {
	leakcheck.At(t)
	leader := openWAL(t, t.TempDir())
	// Backlog so the streamer has records to push the moment it connects.
	for i := 0; i < 8; i++ {
		if _, err := leader.AppendLSN([]byte(fmt.Sprintf("backlog-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	stalled := func() (transport.Conn, error) {
		local, remote := transport.Pipe(1)
		go remote.Send(encodeFrame(&frame{Kind: frHello, LSN: 0})) // then never Recv
		return local, nil
	}
	opt := fastOpts("t_stalled")
	opt.Quorum = 1 // leader-local durability; the follower tails asynchronously
	g := NewGroup(leader, []Dialer{stalled}, opt)
	defer g.Close()

	// Wait until the streamer is live (and therefore wedged in Send on
	// the 1-slot pipe), then prove appends still go through.
	waitFor(t, "stalled follower connect", func() bool { return g.followers[0].live.Load() })
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 4; i++ {
			if _, err := leader.AppendLSN([]byte(fmt.Sprintf("live-%d", i))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("append alongside stalled follower: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("leader appends blocked behind a stalled follower connection")
	}
}

// TestConcurrentServeConnSerialized races two connections serving the
// same Follower — the displaced-plus-fresh window Host's newest-
// connection-wins policy allows — each streaming the identical record
// sequence. The per-follower apply mutex must make the mark-check +
// append atomic, so the journal ends up with each record exactly once
// and in order; an unserialized follower could double-apply a record
// and silently stop being a prefix of the leader's history.
func TestConcurrentServeConnSerialized(t *testing.T) {
	leakcheck.At(t)
	// SyncNever keeps each apply tight so the two serving goroutines
	// interleave as much as possible across many records.
	fw, err := wal.Open(t.TempDir(), wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	f := NewFollower(fw)
	const n = 500

	var serving sync.WaitGroup
	conns := make([]transport.Conn, 2)
	for i := range conns {
		local, remote := transport.Pipe(0) // default cap holds all acks unread
		conns[i] = local
		serving.Add(1)
		go func() {
			defer serving.Done()
			f.ServeConn(remote)
		}()
	}
	var senders sync.WaitGroup
	for _, c := range conns {
		senders.Add(1)
		go func(c transport.Conn) {
			defer senders.Done()
			for lsn := 1; lsn <= n; lsn++ {
				rec := []byte(fmt.Sprintf("rec-%d", lsn))
				if err := c.Send(encodeFrame(&frame{Kind: frAppend, LSN: uint64(lsn), Payload: rec})); err != nil {
					t.Errorf("send LSN %d: %v", lsn, err)
					return
				}
			}
		}(c)
	}
	senders.Wait()
	waitFor(t, "apply drain", func() bool { return f.HW() >= n })
	for _, c := range conns {
		c.Close()
	}
	serving.Wait()

	var got []string
	if err := fw.Replay(func(rec []byte) error {
		got = append(got, string(rec))
		return nil
	}); err != nil {
		t.Fatalf("replaying follower: %v", err)
	}
	if len(got) != n {
		t.Fatalf("follower journal has %d records, want exactly %d (duplicate apply?)", len(got), n)
	}
	for i, r := range got {
		if want := fmt.Sprintf("rec-%d", i+1); r != want {
			t.Fatalf("record %d = %q, want %q — journal is not a prefix of the leader's history", i, r, want)
		}
	}
}

// TestAsyncQuorumOne: quorum 1 means the leader alone carries the
// write and followers tail asynchronously — Replicate never blocks and
// never degrades, but convergence still happens.
func TestAsyncQuorumOne(t *testing.T) {
	leakcheck.At(t)
	c := newCluster(t, 1)
	opt := fastOpts("t_async")
	opt.Quorum = 1
	g := NewGroup(c.leader, c.dialers, opt)
	defer g.Close()
	for i := 0; i < 5; i++ {
		lsn, _ := c.leader.AppendLSN([]byte(fmt.Sprintf("r%d", i)))
		if err := g.Replicate(lsn); err != nil {
			t.Fatalf("async replicate: %v", err)
		}
	}
	waitFor(t, "async convergence", g.Converged)
}
