package replica

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/breaker"
	"repro/internal/faultpoint"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wal"
)

// ErrNoQuorum reports that the write quorum is currently unreachable:
// an append could not gather enough durable follower acks within the
// ack timeout. The group enters degraded mode; the anti-entropy loop
// clears it once enough followers have caught back up to the leader.
var ErrNoQuorum = errors.New("replica: write quorum unreachable")

// Dialer opens a fresh connection to one follower. The group redials
// through it after every stream failure, paced by a per-follower
// circuit breaker.
type Dialer func() (transport.Conn, error)

// Options configures a replication group. Zero values take the
// documented defaults.
type Options struct {
	// Quorum is the total number of durable copies — leader included —
	// an append must reach before Replicate returns success. Default 2
	// (leader + 1 follower). 1 means the leader alone suffices and
	// followers replicate asynchronously.
	Quorum int
	// AckTimeout bounds how long Replicate waits for the quorum before
	// declaring it unreachable and degrading. Default 2s.
	AckTimeout time.Duration
	// RepairInterval is the anti-entropy cadence: how often streamers
	// probe idle followers and the repair loop re-evaluates degraded
	// state and lag. Default 500ms.
	RepairInterval time.Duration
	// DialBackoff paces reconnection attempts to a dead follower.
	// Default 50ms.
	DialBackoff time.Duration
	// Registry receives the replication metrics; defaults to
	// obs.Default().
	Registry *obs.Registry
	// Name prefixes the exported metrics and identifies the group (one
	// group per shard). Default "replica".
	Name string
}

func (o Options) withDefaults() Options {
	if o.Quorum <= 0 {
		o.Quorum = 2
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 2 * time.Second
	}
	if o.RepairInterval <= 0 {
		o.RepairInterval = 500 * time.Millisecond
	}
	if o.DialBackoff <= 0 {
		o.DialBackoff = 50 * time.Millisecond
	}
	if o.Registry == nil {
		o.Registry = obs.Default()
	}
	if o.Name == "" {
		o.Name = "replica"
	}
	return o
}

// follower is the leader's view of one replica: its durable high-water
// mark (from acks), the live connection if any, and the breaker pacing
// redials.
type follower struct {
	idx    int
	dial   Dialer
	brk    *breaker.Breaker
	hw     atomic.Uint64
	live   atomic.Bool
	notify chan struct{} // cap 1: kick the streamer out of its idle wait

	acks *obs.Counter
	errs *obs.Counter

	mu   sync.Mutex
	conn transport.Conn // current connection, severed on Close
}

func (f *follower) setConn(c transport.Conn) {
	f.mu.Lock()
	f.conn = c
	f.mu.Unlock()
}

func (f *follower) closeConn() {
	f.mu.Lock()
	c := f.conn
	f.conn = nil
	f.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Group replicates one leader journal (one provider shard) to a set of
// followers and accounts the write quorum for each append. It runs one
// streamer goroutine per follower (which owns dialing, catch-up and
// live streaming), one ack-reader per live connection, and one
// anti-entropy repair loop for the group.
type Group struct {
	w   *wal.WAL
	opt Options

	followers []*follower

	mu        sync.Mutex
	ackSignal chan struct{} // closed+replaced on every ack: broadcast to waiters
	degraded  error         // nil = quorum reachable
	closed    bool

	stop chan struct{}
	wg   sync.WaitGroup

	quorumWait *obs.Histogram
	degGauge   *obs.Gauge
	lagGauge   *obs.Gauge
	skips      *obs.Counter
	timeouts   *obs.Counter
}

// NewGroup starts replication of w to one follower per dialer and
// returns the running group. Close stops it.
func NewGroup(w *wal.WAL, dialers []Dialer, opt Options) *Group {
	opt = opt.withDefaults()
	g := &Group{
		w:         w,
		opt:       opt,
		ackSignal: make(chan struct{}),
		stop:      make(chan struct{}),
		quorumWait: opt.Registry.Histogram(opt.Name+"_quorum_wait_ns",
			[]int64{100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000}),
		degGauge: opt.Registry.Gauge(opt.Name + "_degraded"),
		lagGauge: opt.Registry.Gauge(opt.Name + "_lag_records"),
		skips:    opt.Registry.Counter(opt.Name + "_degraded_skips_total"),
		timeouts: opt.Registry.Counter(opt.Name + "_quorum_timeouts_total"),
	}
	for i, dial := range dialers {
		f := &follower{
			idx:    i,
			dial:   dial,
			notify: make(chan struct{}, 1),
			acks:   opt.Registry.Counter(obs.Labeled(opt.Name+"_acks_total", "replica", strconv.Itoa(i))),
			errs:   opt.Registry.Counter(obs.Labeled(opt.Name+"_errs_total", "replica", strconv.Itoa(i))),
			brk: breaker.New(breaker.Options{
				Window:     8,
				MinSamples: 2,
				Cooldown:   8 * opt.DialBackoff,
				Registry:   opt.Registry,
				Name:       obs.Labeled(opt.Name+"_dial_breaker", "replica", strconv.Itoa(i)),
			}),
		}
		g.followers = append(g.followers, f)
		g.wg.Add(1)
		go g.runFollower(f)
	}
	g.wg.Add(1)
	go g.repairLoop()
	return g
}

// Replicate blocks until the journal record at lsn is durable on the
// configured write quorum (the leader's own already-completed append
// counts as one copy), then returns nil — the provider's signal that
// it may now sign/ack the protocol step that journaled the record.
//
// If the quorum cannot be gathered within AckTimeout the group
// degrades and ErrNoQuorum is returned: the caller must NOT ack the
// protocol step. While degraded, subsequent calls return nil
// immediately without waiting (drain mode — open sessions complete on
// leader-local durability exactly as an unreplicated provider would,
// and admission of NEW sessions is refused at a higher layer via
// Quorum). Records appended while degraded are backfilled by the
// streamers as followers return; the anti-entropy loop re-arms quorum
// waiting once enough followers have caught up.
func (g *Group) Replicate(lsn uint64) error {
	need := g.opt.Quorum - 1
	g.kickAll()
	if need <= 0 {
		return nil
	}
	if g.Quorum() != nil {
		g.skips.Inc()
		return nil
	}
	start := time.Now()
	timer := time.NewTimer(g.opt.AckTimeout)
	defer timer.Stop()
	for {
		if g.ackedAtLeast(lsn) >= need {
			g.quorumWait.ObserveSince(start)
			return nil
		}
		g.mu.Lock()
		ch := g.ackSignal
		g.mu.Unlock()
		select {
		case <-ch:
		case <-timer.C:
			got := g.ackedAtLeast(lsn)
			err := fmt.Errorf("%w: %d/%d follower acks for LSN %d within %v",
				ErrNoQuorum, got, need, lsn, g.opt.AckTimeout)
			g.setDegraded(err)
			g.timeouts.Inc()
			return err
		case <-g.stop:
			return fmt.Errorf("replica: group %s closed", g.opt.Name)
		}
	}
}

// Quorum reports nil when the write quorum is reachable, or the error
// that degraded the group. Providers fold this into Health().
func (g *Group) Quorum() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.degraded
}

// Converged reports whether every follower's durable high-water mark
// has reached the leader's current LSN — the anti-entropy loop's
// fixed point after a follower restart.
func (g *Group) Converged() bool {
	lsn := g.w.LSN()
	for _, f := range g.followers {
		if f.hw.Load() < lsn {
			return false
		}
	}
	return true
}

// Lag returns how many records the slowest follower is behind the
// leader.
func (g *Group) Lag() uint64 {
	lsn := g.w.LSN()
	var max uint64
	for _, f := range g.followers {
		if hw := f.hw.Load(); lsn > hw && lsn-hw > max {
			max = lsn - hw
		}
	}
	return max
}

// FollowerHW returns follower i's durable high-water mark as last
// acked to the leader.
func (g *Group) FollowerHW(i int) uint64 { return g.followers[i].hw.Load() }

// Close stops the streamers, ack readers and repair loop and severs
// all follower connections.
func (g *Group) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	close(g.stop)
	g.mu.Unlock()
	for _, f := range g.followers {
		f.closeConn()
	}
	g.wg.Wait()
	return nil
}

func (g *Group) stopped() bool {
	select {
	case <-g.stop:
		return true
	default:
		return false
	}
}

func (g *Group) kickAll() {
	for _, f := range g.followers {
		select {
		case f.notify <- struct{}{}:
		default:
		}
	}
}

// ackedAtLeast counts followers whose durable mark covers lsn.
func (g *Group) ackedAtLeast(lsn uint64) int {
	n := 0
	for _, f := range g.followers {
		if f.hw.Load() >= lsn {
			n++
		}
	}
	return n
}

// broadcastAck wakes every Replicate waiter to re-check quorum.
func (g *Group) broadcastAck() {
	g.mu.Lock()
	close(g.ackSignal)
	g.ackSignal = make(chan struct{})
	g.mu.Unlock()
}

func (g *Group) setDegraded(err error) {
	g.mu.Lock()
	if g.degraded == nil {
		g.degraded = err
		g.degGauge.Set(1)
	}
	g.mu.Unlock()
}

// repairLoop is the group's anti-entropy supervisor: each tick it
// publishes the replication lag, kicks streamers of followers that are
// behind (backfill), and — when the group is degraded — re-arms quorum
// waiting once enough followers have durably caught up to the leader,
// so a killed-and-restarted replica converges and restores service
// with no operator action.
func (g *Group) repairLoop() {
	defer g.wg.Done()
	tick := time.NewTicker(g.opt.RepairInterval)
	defer tick.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-tick.C:
		}
		lsn := g.w.LSN()
		caughtUp := 0
		behind := false
		for _, f := range g.followers {
			if f.hw.Load() >= lsn {
				if f.live.Load() {
					caughtUp++
				}
			} else {
				behind = true
			}
		}
		g.lagGauge.Set(int64(g.Lag()))
		if behind {
			g.kickAll()
		}
		g.mu.Lock()
		if g.degraded != nil && caughtUp >= g.opt.Quorum-1 {
			g.degraded = nil
			g.degGauge.Set(0)
		}
		g.mu.Unlock()
	}
}

// runFollower is follower f's streamer goroutine: it owns the dial /
// hello / stream / redial cycle for f's connection and spawns an
// ack-reader per live connection. It exits only on Close.
func (g *Group) runFollower(f *follower) {
	defer g.wg.Done()
	for {
		conn := g.connect(f)
		if conn == nil {
			return // closing
		}
		f.live.Store(true)
		done := make(chan struct{})
		g.wg.Add(1)
		go g.readAcks(f, conn, done)
		g.streamTo(f, conn)
		f.live.Store(false)
		f.closeConn()
		<-done
		if g.stopped() {
			return
		}
	}
}

// connect dials f until it has a live connection whose hello frame has
// been read (so the streamer knows the follower's true durable mark),
// pacing attempts with the per-follower breaker and DialBackoff.
// Returns nil when the group is closing.
func (g *Group) connect(f *follower) transport.Conn {
	for {
		if g.stopped() {
			return nil
		}
		if !f.brk.Allow() {
			g.sleep(g.opt.DialBackoff)
			continue
		}
		conn, err := g.tryConnect(f)
		if err != nil {
			f.brk.OnFailure()
			f.errs.Inc()
			g.sleep(g.opt.DialBackoff)
			continue
		}
		f.brk.OnSuccess()
		f.setConn(conn)
		if g.stopped() { // Close raced the dial; its closeConn may have missed this conn
			f.closeConn()
			return nil
		}
		return conn
	}
}

func (g *Group) tryConnect(f *follower) (transport.Conn, error) {
	conn, err := f.dial()
	if err != nil {
		return nil, err
	}
	raw, err := conn.Recv()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("replica: reading hello: %w", err)
	}
	fr, err := decodeFrame(raw)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("replica: bad hello from follower %d: %v", f.idx, err)
	}
	if fr.Kind != frHello {
		conn.Close()
		return nil, fmt.Errorf("replica: bad hello from follower %d: kind %d", f.idx, fr.Kind)
	}
	f.hw.Store(fr.LSN)
	g.broadcastAck()
	return conn, nil
}

// streamBatch bounds how many records one journal read copies out
// under the WAL lock before the lock is released for the sends.
const streamBatch = 256

// streamTo pushes the leader journal to f over conn until the stream
// breaks: catch-up and live tail are the same LSN-ranged read from the
// follower's acked mark. Records are copied out of the journal in
// bounded batches (ReadBatchFromLSN) and sent with the WAL lock
// RELEASED — a stalled follower connection must only wedge this
// stream, never the leader's own appends. A mark below the compaction
// horizon is served by shipping the leader checkpoint (snapshot frame)
// first. Idle periods are bridged with probes at the repair cadence;
// records still unacked after a full idle interval re-enter the send
// window, so a dropped ack can never wedge the stream.
func (g *Group) streamTo(f *follower, conn transport.Conn) {
	var err error
	defer recoverCrash(&err)
	sent := f.hw.Load()
	for {
		if hw := f.hw.Load(); hw > sent {
			sent = hw
		}
		if g.w.LSN() > sent {
			recs, more, err := g.w.ReadBatchFromLSN(sent, streamBatch)
			switch {
			case errors.Is(err, wal.ErrCompacted):
				payload, ckLSN, ok := g.w.LoadCheckpoint()
				if !ok || ckLSN <= sent {
					// Horizon moved under us without a usable snapshot;
					// treat as a stream fault and redial.
					f.errs.Inc()
					return
				}
				if serr := conn.Send(encodeFrame(&frame{Kind: frSnapshot, LSN: ckLSN, Payload: payload})); serr != nil {
					f.errs.Inc()
					return
				}
				sent = ckLSN
				continue
			case err != nil:
				f.errs.Inc()
				return
			}
			for i, rec := range recs {
				lsn := sent + 1 + uint64(i)
				if ferr := faultpoint.HitErr(fpNetPartition); ferr != nil {
					f.errs.Inc()
					return
				}
				if serr := conn.Send(encodeFrame(&frame{Kind: frAppend, LSN: lsn, Payload: rec})); serr != nil {
					f.errs.Inc()
					return
				}
			}
			sent += uint64(len(recs))
			if len(recs) > 0 || more {
				continue // more may have landed while we streamed
			}
		}
		select {
		case <-f.notify:
		case <-time.After(g.opt.RepairInterval):
			// Anti-entropy probe: refresh the follower's mark, and fold
			// anything it did not durably ack back into the send window.
			if serr := conn.Send(encodeFrame(&frame{Kind: frProbe})); serr != nil {
				f.errs.Inc()
				return
			}
			if hw := f.hw.Load(); hw < sent {
				sent = hw
			}
		case <-g.stop:
			return
		}
	}
}

// readAcks drains follower acks on conn, advancing f's durable mark
// and waking quorum waiters, until the connection breaks.
func (g *Group) readAcks(f *follower, conn transport.Conn, done chan struct{}) {
	defer g.wg.Done()
	defer close(done)
	defer conn.Close() // unblocks the streamer's Send if we exit first
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		fr, err := decodeFrame(raw)
		if err != nil || fr.Kind != frAck {
			f.errs.Inc()
			return
		}
		// Marks only advance: a re-ack below the known mark is stale.
		for {
			cur := f.hw.Load()
			if fr.LSN <= cur || f.hw.CompareAndSwap(cur, fr.LSN) {
				break
			}
		}
		f.acks.Inc()
		g.broadcastAck()
	}
}

func (g *Group) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-g.stop:
	}
}
