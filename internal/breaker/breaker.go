// Package breaker implements a circuit breaker for the TTP escalation
// path. The paper's §4.3 Resolve sub-protocol assumes the TTP is
// reachable; when it is not, every stuck transaction would otherwise
// burn a full dial-and-wait timeout before falling back — under load
// that turns one dead TTP into thousands of blocked goroutines. The
// breaker watches the recent outcome window and, once the failure ratio
// trips it, fails escalations fast (callers queue a retry instead of
// dialing) until a cooldown passes and a single half-open probe proves
// the TTP is back.
//
// States follow the classic three-state machine:
//
//	Closed    — normal operation; outcomes recorded in a sliding window.
//	Open      — tripped; Allow fails fast until Cooldown elapses.
//	HalfOpen  — one probe request allowed through; its outcome decides
//	            whether the breaker closes again or re-opens.
package breaker

import (
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// State is the breaker's position.
type State int

const (
	Closed State = iota
	Open
	HalfOpen
)

// String names the state for logs and metrics.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Options configures a Breaker. Zero values take the documented
// defaults.
type Options struct {
	// Window is the number of recent outcomes considered when deciding
	// to trip. Default 16.
	Window int
	// MinSamples is the minimum number of recorded outcomes before the
	// failure ratio is consulted — prevents one failure from tripping a
	// cold breaker. Default 4.
	MinSamples int
	// FailureRatio trips the breaker when failures/window ≥ ratio.
	// Default 0.5.
	FailureRatio float64
	// Cooldown is how long the breaker stays Open before allowing a
	// half-open probe. Default 5s.
	Cooldown time.Duration
	// Clock drives the cooldown; defaults to the wall clock.
	Clock clock.Clock
	// Registry receives state/trip/fast-fail metrics when non-nil,
	// prefixed by Name.
	Registry *obs.Registry
	// Name prefixes the exported metrics (e.g. "ttp_breaker" →
	// ttp_breaker_state, ttp_breaker_trips_total). Default "breaker".
	Name string
}

// Breaker is a failure-rate circuit breaker. Safe for concurrent use.
type Breaker struct {
	mu       sync.Mutex
	state    State
	window   []bool // ring of recent outcomes; true = failure
	filled   int
	next     int
	fails    int
	openedAt time.Time
	probing  bool // HalfOpen: a probe is in flight

	minSamples int
	ratio      float64
	cooldown   time.Duration
	clk        clock.Clock

	stateGauge *obs.Gauge
	trips      *obs.Counter
	fastFails  *obs.Counter
	probes     *obs.Counter
}

// New builds a Breaker from opts.
func New(opts Options) *Breaker {
	if opts.Window <= 0 {
		opts.Window = 16
	}
	if opts.MinSamples <= 0 {
		opts.MinSamples = 4
	}
	if opts.FailureRatio <= 0 {
		opts.FailureRatio = 0.5
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 5 * time.Second
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real()
	}
	if opts.Name == "" {
		opts.Name = "breaker"
	}
	b := &Breaker{
		window:     make([]bool, opts.Window),
		minSamples: opts.MinSamples,
		ratio:      opts.FailureRatio,
		cooldown:   opts.Cooldown,
		clk:        opts.Clock,
	}
	if opts.Registry != nil {
		b.stateGauge = opts.Registry.Gauge(opts.Name + "_state")
		b.trips = opts.Registry.Counter(opts.Name + "_trips_total")
		b.fastFails = opts.Registry.Counter(opts.Name + "_fast_fails_total")
		b.probes = opts.Registry.Counter(opts.Name + "_probes_total")
	}
	return b
}

// Allow reports whether a request may proceed. False means the caller
// should fail fast (queue a retry) without touching the protected
// resource. When the cooldown has elapsed, exactly one caller is let
// through as the half-open probe; its OnSuccess/OnFailure decides the
// next state.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.clk.Now().Sub(b.openedAt) >= b.cooldown {
			b.setStateLocked(HalfOpen)
			b.probing = true
			if b.probes != nil {
				b.probes.Inc()
			}
			return true
		}
		if b.fastFails != nil {
			b.fastFails.Inc()
		}
		return false
	case HalfOpen:
		if b.probing {
			if b.fastFails != nil {
				b.fastFails.Inc()
			}
			return false
		}
		b.probing = true
		if b.probes != nil {
			b.probes.Inc()
		}
		return true
	}
	return true
}

// OnSuccess records a successful request. In HalfOpen the probe
// succeeded: the window resets and the breaker closes.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.resetWindowLocked()
		b.probing = false
		b.setStateLocked(Closed)
	case Closed:
		b.recordLocked(false)
	}
}

// OnFailure records a failed request. In HalfOpen the probe failed: the
// breaker re-opens and the cooldown restarts. In Closed the failure
// enters the window and may trip the breaker.
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.probing = false
		b.tripLocked()
	case Closed:
		b.recordLocked(true)
		if b.filled >= b.minSamples && float64(b.fails)/float64(b.filled) >= b.ratio {
			b.tripLocked()
		}
	}
}

// State returns the current state (consulting the cooldown does NOT
// happen here; only Allow transitions Open→HalfOpen).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *Breaker) tripLocked() {
	b.setStateLocked(Open)
	b.openedAt = b.clk.Now()
	b.resetWindowLocked()
	if b.trips != nil {
		b.trips.Inc()
	}
}

func (b *Breaker) recordLocked(failure bool) {
	if b.filled == len(b.window) {
		// Evicting the oldest outcome from the ring.
		if b.window[b.next] {
			b.fails--
		}
	} else {
		b.filled++
	}
	b.window[b.next] = failure
	if failure {
		b.fails++
	}
	b.next = (b.next + 1) % len(b.window)
}

func (b *Breaker) resetWindowLocked() {
	for i := range b.window {
		b.window[i] = false
	}
	b.filled, b.next, b.fails = 0, 0, 0
}

func (b *Breaker) setStateLocked(s State) {
	b.state = s
	if b.stateGauge != nil {
		b.stateGauge.Set(int64(s))
	}
}
