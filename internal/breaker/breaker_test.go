package breaker

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

func newTestBreaker(clk clock.Clock, reg *obs.Registry) *Breaker {
	return New(Options{
		Window:       8,
		MinSamples:   4,
		FailureRatio: 0.5,
		Cooldown:     5 * time.Second,
		Clock:        clk,
		Registry:     reg,
		Name:         "test_breaker",
	})
}

// TestBreakerTripsOnFailureRate checks the Closed→Open transition:
// the breaker stays closed below MinSamples, trips once the window
// failure ratio crosses the threshold, and then fails fast.
func TestBreakerTripsOnFailureRate(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	b := newTestBreaker(clk, nil)

	// Three failures: below MinSamples, must not trip.
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("Allow()=false before MinSamples (i=%d)", i)
		}
		b.OnFailure()
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state=%v after 3 failures, want Closed", got)
	}
	// Fourth failure reaches MinSamples with 100% failure rate: trip.
	b.OnFailure()
	if got := b.State(); got != Open {
		t.Fatalf("state=%v after 4 failures, want Open", got)
	}
	if b.Allow() {
		t.Fatal("Allow()=true while Open inside cooldown")
	}
}

// TestBreakerStaysClosedUnderRatio checks mixed outcomes below the
// threshold never trip.
func TestBreakerStaysClosedUnderRatio(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	b := newTestBreaker(clk, nil)
	// 8-slot window, 3 failures / 8 = 0.375 < 0.5.
	for i := 0; i < 5; i++ {
		b.OnSuccess()
	}
	for i := 0; i < 3; i++ {
		b.OnFailure()
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state=%v at 37%% failures, want Closed", got)
	}
	if !b.Allow() {
		t.Fatal("Allow()=false while Closed")
	}
}

// TestBreakerHalfOpenProbe checks the Open→HalfOpen→Closed path: after
// the cooldown exactly one probe passes, concurrent requests still fail
// fast, and a successful probe closes the breaker with a clean window.
func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	b := newTestBreaker(clk, nil)
	for i := 0; i < 4; i++ {
		b.OnFailure()
	}
	if b.State() != Open {
		t.Fatal("breaker did not trip")
	}
	clk.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("Allow()=false after cooldown, want probe admitted")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state=%v after probe admitted, want HalfOpen", b.State())
	}
	if b.Allow() {
		t.Fatal("second Allow()=true while probe in flight")
	}
	b.OnSuccess()
	if b.State() != Closed {
		t.Fatalf("state=%v after probe success, want Closed", b.State())
	}
	// The window was reset: one failure must not immediately re-trip.
	b.OnFailure()
	if b.State() != Closed {
		t.Fatal("breaker re-tripped on first failure after recovery")
	}
}

// TestBreakerProbeFailureReopens checks HalfOpen→Open on probe failure
// and that the cooldown restarts from the re-trip.
func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	b := newTestBreaker(clk, nil)
	for i := 0; i < 4; i++ {
		b.OnFailure()
	}
	clk.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted after cooldown")
	}
	b.OnFailure()
	if b.State() != Open {
		t.Fatalf("state=%v after probe failure, want Open", b.State())
	}
	// Cooldown restarted: 3s in, still fast-failing.
	clk.Advance(3 * time.Second)
	if b.Allow() {
		t.Fatal("Allow()=true 3s into restarted cooldown")
	}
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted after restarted cooldown elapsed")
	}
}

// TestBreakerWindowSlides checks old outcomes age out of the ring: a
// burst of early failures followed by enough successes must not trip.
func TestBreakerWindowSlides(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	b := newTestBreaker(clk, nil)
	for i := 0; i < 3; i++ {
		b.OnFailure()
	}
	// 8 successes push all 3 failures out of the 8-slot window.
	for i := 0; i < 8; i++ {
		b.OnSuccess()
	}
	b.OnFailure() // 1/8 failures — under threshold
	if b.State() != Closed {
		t.Fatalf("state=%v, want Closed after failures aged out", b.State())
	}
}

// TestBreakerMetrics checks the obs export: state gauge, trip counter,
// fast-fail counter, probe counter.
func TestBreakerMetrics(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	reg := obs.NewRegistry()
	b := newTestBreaker(clk, reg)
	for i := 0; i < 4; i++ {
		b.OnFailure()
	}
	if got := reg.Gauge("test_breaker_state").Value(); got != int64(Open) {
		t.Fatalf("state gauge=%d, want %d (open)", got, Open)
	}
	if got := reg.Counter("test_breaker_trips_total").Value(); got != 1 {
		t.Fatalf("trips=%d, want 1", got)
	}
	b.Allow() // inside cooldown: fast fail
	if got := reg.Counter("test_breaker_fast_fails_total").Value(); got != 1 {
		t.Fatalf("fast fails=%d, want 1", got)
	}
	clk.Advance(5 * time.Second)
	b.Allow() // probe
	if got := reg.Counter("test_breaker_probes_total").Value(); got != 1 {
		t.Fatalf("probes=%d, want 1", got)
	}
	b.OnSuccess()
	if got := reg.Gauge("test_breaker_state").Value(); got != int64(Closed) {
		t.Fatalf("state gauge=%d after recovery, want %d (closed)", got, Closed)
	}
}

// TestBreakerConcurrent hammers the breaker from many goroutines to
// give the race detector a chance at the locking.
func TestBreakerConcurrent(t *testing.T) {
	b := New(Options{Cooldown: time.Millisecond})
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 200; j++ {
				if b.Allow() {
					if j%3 == 0 {
						b.OnFailure()
					} else {
						b.OnSuccess()
					}
				}
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
