package integration

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// httpGet fetches a URL with retries (the daemon binds asynchronously
// to the test).
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	var lastErr error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil {
				return resp.StatusCode, string(body)
			}
			lastErr = err
		} else {
			lastErr = err
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("GET %s: %v", url, lastErr)
	return 0, ""
}

// metricValue parses one "name value" line out of the text /metrics
// exposition.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not present in /metrics output:\n%s", name, body)
	return 0
}

// TestObsEndpointLifecycle boots the real daemons with -obs-addr and
// checks the operational surface end to end: /healthz answers, and
// after an upload plus a TTP resolve the /metrics exposition shows the
// server, WAL, verify-cache and protocol counters moving.
func TestObsEndpointLifecycle(t *testing.T) {
	bins := cliBinaries(t)
	work := t.TempDir()
	state := filepath.Join(work, "state")
	blobs := filepath.Join(work, "blobs")
	walDir := filepath.Join(work, "wal")

	run(t, true, filepath.Join(bins, "pkitool"), "init", "-state", state, "-bits", "1024")

	provAddr := "127.0.0.1:29761"
	provObs := "127.0.0.1:29762"
	ttpAddr := "127.0.0.1:29763"
	ttpObs := "127.0.0.1:29764"

	server := exec.Command(filepath.Join(bins, "nrserver"),
		"-state", state, "-listen", provAddr, "-store", blobs,
		"-wal-dir", walDir, "-fsync", "always", "-obs-addr", provObs)
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Process.Kill(); server.Wait() })
	ttpd := exec.Command(filepath.Join(bins, "ttpd"),
		"-state", state, "-listen", ttpAddr, "-peer", "bob="+provAddr, "-obs-addr", ttpObs)
	if err := ttpd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ttpd.Process.Kill(); ttpd.Wait() })

	// Health answers on both daemons before any traffic.
	for _, obs := range []string{provObs, ttpObs} {
		if code, body := httpGet(t, "http://"+obs+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
			t.Fatalf("%s/healthz: %d %q", obs, code, body)
		}
	}

	// One upload, then a resolve through the TTP (re-obtains the NRR) so
	// both daemons and the TTP query path all see traffic.
	payload := filepath.Join(work, "data.txt")
	if err := os.WriteFile(payload, []byte("observable payload\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	run(t, true, filepath.Join(bins, "nrclient"), "upload",
		"-state", state, "-server", provAddr, "-txn", "t-obs", "-key", "k/obs", "-file", payload)
	out := run(t, true, filepath.Join(bins, "nrclient"), "resolve",
		"-state", state, "-ttp", ttpAddr, "-txn", "t-obs", "-report", "obs integration")
	if !strings.Contains(out, "resolve outcome: continue") {
		t.Fatalf("resolve: %s", out)
	}

	// Provider /metrics: server loop, WAL durability, verify cache and
	// protocol counters all moved.
	_, body := httpGet(t, "http://"+provObs+"/metrics")
	for _, name := range []string{
		"server_msgs_total",
		"server_handle_latency_ns_count",
		"wal_appends_total",
		"wal_fsyncs_total",
		"verify_cache_misses_total",
		"transport_frames_recv_total",
		"tpnr_msgs_sent",
	} {
		if v := metricValue(t, body, name); v <= 0 {
			t.Errorf("provider %s = %d, want > 0", name, v)
		}
	}

	// TTP /metrics: the resolve round-trip moved its server and protocol
	// counters too.
	_, ttpBody := httpGet(t, "http://"+ttpObs+"/metrics")
	for _, name := range []string{"server_msgs_total", "tpnr_resolves"} {
		if v := metricValue(t, ttpBody, name); v <= 0 {
			t.Errorf("ttp %s = %d, want > 0", name, v)
		}
	}

	// JSON variant parses and agrees on the handled-message counter.
	_, jsonBody := httpGet(t, "http://"+provObs+"/metrics?format=json")
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(jsonBody), &snap); err != nil {
		t.Fatalf("parsing /metrics?format=json: %v\n%s", err, jsonBody)
	}
	if snap.Counters["server_msgs_total"] <= 0 {
		t.Errorf("json server_msgs_total = %d, want > 0", snap.Counters["server_msgs_total"])
	}

	// pprof is mounted (index answers).
	if code, _ := httpGet(t, "http://"+provObs+"/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ status %d", code)
	}

	// Graceful shutdown on SIGTERM closes the obs endpoint too.
	if err := server.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- server.Wait() }()
	select {
	case <-waitCh:
	case <-time.After(10 * time.Second):
		t.Fatal("nrserver did not exit after SIGINT")
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", provObs)); err == nil {
		t.Error("obs endpoint still serving after daemon shutdown")
	}
}
