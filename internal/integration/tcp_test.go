// Package integration runs whole-system tests: the TPNR deployment
// over real TCP sockets, and the command-line binaries driven end to
// end exactly as an operator would.
package integration

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/keystore"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/ttp"
)

// tcpWorld wires client, provider and TTP over real TCP listeners on
// loopback, sharing a PKI from a keystore directory (the same material
// the CLIs use). Both server processes run on the concurrent
// core.Server runtime, exactly as the CLIs do.
type tcpWorld struct {
	client   *core.Client
	provider *core.Provider
	provSrv  *core.Server
	ttpAddr  string
	provAddr string
	store    *storage.Mem
}

func newTCPWorld(t *testing.T) *tcpWorld {
	t.Helper()
	dir := t.TempDir()
	if err := keystore.Init(dir, []string{"alice", "bob", "ttp"}, 1024, time.Hour); err != nil {
		t.Fatal(err)
	}
	world, err := keystore.LoadWorld(dir)
	if err != nil {
		t.Fatal(err)
	}
	caKey, err := world.CAKey()
	if err != nil {
		t.Fatal(err)
	}
	opts := func(name string) []core.Option {
		id, err := keystore.LoadIdentity(dir, name)
		if err != nil {
			t.Fatal(err)
		}
		return []core.Option{
			core.WithIdentity(id),
			core.WithCAKey(caKey),
			core.WithDirectory(world.Lookup),
			core.WithCounters(&metrics.Counters{}),
			core.WithResponseTimeout(2 * time.Second),
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)

	store := storage.NewMem(nil)
	provider, err := core.NewProvider(append(opts("bob"),
		core.WithStore(store), core.WithTTPID("ttp"))...)
	if err != nil {
		t.Fatal(err)
	}
	provL, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	provSrv := core.NewServer(provider)
	go provSrv.Serve(ctx, provL)

	ttpServer, err := ttp.New(func(ctx context.Context, partyID string) (transport.Conn, error) {
		if partyID == "bob" {
			return transport.DialTCPContext(ctx, provL.Addr())
		}
		return nil, errors.New("no route to " + partyID)
	}, opts("ttp")...)
	if err != nil {
		t.Fatal(err)
	}
	ttpL, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ttpSrv := core.NewServer(ttpServer)
	go ttpSrv.Serve(ctx, ttpL)

	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer scancel()
		provSrv.Shutdown(sctx)
		ttpSrv.Shutdown(sctx)
	})

	client, err := core.NewClient("bob", "ttp", opts("alice")...)
	if err != nil {
		t.Fatal(err)
	}
	return &tcpWorld{
		client:   client,
		provider: provider,
		provSrv:  provSrv,
		ttpAddr:  ttpL.Addr(),
		provAddr: provL.Addr(),
		store:    store,
	}
}

func TestTCPUploadDownload(t *testing.T) {
	w := newTCPWorld(t)
	ctx := context.Background()
	conn, err := transport.DialTCP(w.provAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	data := bytes.Repeat([]byte("tcp payload "), 1000)
	if _, err := w.client.Upload(ctx, conn, "tcp-1", "obj", data); err != nil {
		t.Fatal(err)
	}
	res, err := w.client.Download(ctx, conn, "tcp-2", "obj", "tcp-1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) || !res.IntegrityOK {
		t.Fatal("TCP round trip failed integrity")
	}
}

func TestTCPTamperDetection(t *testing.T) {
	w := newTCPWorld(t)
	ctx := context.Background()
	conn, err := transport.DialTCP(w.provAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := w.client.Upload(ctx, conn, "tcp-t1", "obj", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := w.store.Tamper("obj", true, func([]byte) []byte { return []byte("v2") }); err != nil {
		t.Fatal(err)
	}
	if _, err := w.client.Download(ctx, conn, "tcp-t2", "obj", "tcp-t1"); !errors.Is(err, core.ErrIntegrity) {
		t.Fatalf("err = %v, want ErrIntegrity", err)
	}
}

func TestTCPResolveThroughTTP(t *testing.T) {
	w := newTCPWorld(t)
	ctx := context.Background()
	conn, err := transport.DialTCP(w.provAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	w.provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	if _, err := w.client.Upload(ctx, conn, "tcp-r", "obj", []byte("v")); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("setup: %v", err)
	}
	w.provider.SetMisbehavior(core.Misbehavior{})

	ttpConn, err := transport.DialTCP(w.ttpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer ttpConn.Close()
	res, err := w.client.Resolve(ctx, ttpConn, "tcp-r", "no NRR over TCP")
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != "continue" || res.PeerEvidence == nil {
		t.Fatalf("resolve over TCP: %+v", res)
	}
}

// TestTCPConcurrent32Goroutines hammers one core.Server over real TCP
// sockets with 32 goroutines mixing uploads, downloads, aborts and
// resolves. Every result must be correct, every object's bytes must be
// intact afterwards, and no transaction may bleed into another.
func TestTCPConcurrent32Goroutines(t *testing.T) {
	w := newTCPWorld(t)
	ctx := context.Background()
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := transport.DialTCP(w.provAddr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			key := fmt.Sprintf("obj-%02d", i)
			data := bytes.Repeat([]byte{byte(i)}, 1024+i)
			upTxn := fmt.Sprintf("tcp-up-%02d", i)
			if _, err := w.client.Upload(ctx, conn, upTxn, key, data); err != nil {
				errs <- fmt.Errorf("upload %d: %w", i, err)
				return
			}
			switch i % 4 {
			case 0, 1: // verified download of what this goroutine stored
				res, err := w.client.Download(ctx, conn, fmt.Sprintf("tcp-dl-%02d", i), key, upTxn)
				if err != nil {
					errs <- fmt.Errorf("download %d: %w", i, err)
					return
				}
				if !bytes.Equal(res.Data, data) {
					errs <- fmt.Errorf("download %d: cross-talk, got %d bytes", i, len(res.Data))
					return
				}
			case 2: // abort a fresh never-completed transaction
				res, err := w.client.Abort(ctx, conn, fmt.Sprintf("tcp-ab-%02d", i), "integration abort")
				if err != nil {
					errs <- fmt.Errorf("abort %d: %w", i, err)
					return
				}
				if !res.Accepted {
					errs <- fmt.Errorf("abort %d: not accepted", i)
					return
				}
			case 3: // resolve the completed upload through the TTP
				ttpConn, err := transport.DialTCP(w.ttpAddr)
				if err != nil {
					errs <- err
					return
				}
				defer ttpConn.Close()
				res, err := w.client.Resolve(ctx, ttpConn, upTxn, "concurrent integration probe")
				if err != nil {
					errs <- fmt.Errorf("resolve %d: %w", i, err)
					return
				}
				if res.Outcome != "continue" || res.PeerEvidence == nil {
					errs <- fmt.Errorf("resolve %d: outcome %q", i, res.Outcome)
					return
				}
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	// Every upload stored exactly its own bytes: no txn cross-talk.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("obj-%02d", i)
		obj, err := w.store.Get(key)
		if err != nil {
			t.Fatalf("object %s missing: %v", key, err)
		}
		want := bytes.Repeat([]byte{byte(i)}, 1024+i)
		if !bytes.Equal(obj.Data, want) {
			t.Fatalf("object %s: stored bytes differ from upload", key)
		}
	}
	if p := w.provSrv.Panics(); p != 0 {
		t.Fatalf("server recovered %d panics", p)
	}
}

// TestMixedIdentityRejectedOverTCP: a client using a key from a
// different keystore (different CA) is rejected by the provider.
func TestMixedIdentityRejectedOverTCP(t *testing.T) {
	w := newTCPWorld(t)
	// Build an impostor with its own CA.
	otherDir := t.TempDir()
	if err := keystore.Init(otherDir, []string{"alice", "bob", "ttp"}, 1024, time.Hour); err != nil {
		t.Fatal(err)
	}
	otherWorld, err := keystore.LoadWorld(otherDir)
	if err != nil {
		t.Fatal(err)
	}
	otherCA, err := otherWorld.CAKey()
	if err != nil {
		t.Fatal(err)
	}
	id, err := keystore.LoadIdentity(otherDir, "alice")
	if err != nil {
		t.Fatal(err)
	}
	impostor, err := core.NewClient("bob", "ttp",
		core.WithIdentity(id),
		core.WithCAKey(otherCA),
		core.WithDirectory(otherWorld.Lookup),
		core.WithResponseTimeout(500*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := transport.DialTCP(w.provAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = impostor.Upload(context.Background(), conn, "imp-1", "obj", []byte("v"))
	if err == nil {
		t.Fatal("impostor upload accepted")
	}
	if _, serr := w.store.Get("obj"); serr == nil {
		t.Fatal("impostor data stored")
	}
}
