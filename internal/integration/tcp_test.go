// Package integration runs whole-system tests: the TPNR deployment
// over real TCP sockets, and the command-line binaries driven end to
// end exactly as an operator would.
package integration

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/keystore"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/ttp"
)

// tcpWorld wires client, provider and TTP over real TCP listeners on
// loopback, sharing a PKI from a keystore directory (the same material
// the CLIs use).
type tcpWorld struct {
	client   *core.Client
	provider *core.Provider
	ttpAddr  string
	provAddr string
	store    *storage.Mem
}

func newTCPWorld(t *testing.T) *tcpWorld {
	t.Helper()
	dir := t.TempDir()
	if err := keystore.Init(dir, []string{"alice", "bob", "ttp"}, 1024, time.Hour); err != nil {
		t.Fatal(err)
	}
	world, err := keystore.LoadWorld(dir)
	if err != nil {
		t.Fatal(err)
	}
	caKey, err := world.CAKey()
	if err != nil {
		t.Fatal(err)
	}
	opts := func(name string) core.Options {
		id, err := keystore.LoadIdentity(dir, name)
		if err != nil {
			t.Fatal(err)
		}
		return core.Options{
			Identity:        id,
			CAKey:           caKey,
			Directory:       world.Lookup,
			Counters:        &metrics.Counters{},
			ResponseTimeout: 2 * time.Second,
		}
	}

	store := storage.NewMem(nil)
	provider, err := core.NewProvider(opts("bob"), store)
	if err != nil {
		t.Fatal(err)
	}
	provL, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { provL.Close() })
	go acceptLoop(provL, func(c transport.Conn) { provider.Serve(c) })

	ttpServer, err := ttp.New(opts("ttp"), func(partyID string) (transport.Conn, error) {
		if partyID == "bob" {
			return transport.DialTCP(provL.Addr())
		}
		return nil, errors.New("no route to " + partyID)
	})
	if err != nil {
		t.Fatal(err)
	}
	ttpL, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ttpL.Close() })
	go acceptLoop(ttpL, func(c transport.Conn) { ttpServer.Serve(c) })

	client, err := core.NewClient(opts("alice"), "bob", "ttp")
	if err != nil {
		t.Fatal(err)
	}
	return &tcpWorld{
		client:   client,
		provider: provider,
		ttpAddr:  ttpL.Addr(),
		provAddr: provL.Addr(),
		store:    store,
	}
}

func acceptLoop(l transport.Listener, serve func(transport.Conn)) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go serve(c)
	}
}

func TestTCPUploadDownload(t *testing.T) {
	w := newTCPWorld(t)
	conn, err := transport.DialTCP(w.provAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	data := bytes.Repeat([]byte("tcp payload "), 1000)
	if _, err := w.client.Upload(conn, "tcp-1", "obj", data); err != nil {
		t.Fatal(err)
	}
	res, err := w.client.Download(conn, "tcp-2", "obj", "tcp-1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) || !res.IntegrityOK {
		t.Fatal("TCP round trip failed integrity")
	}
}

func TestTCPTamperDetection(t *testing.T) {
	w := newTCPWorld(t)
	conn, err := transport.DialTCP(w.provAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := w.client.Upload(conn, "tcp-t1", "obj", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := w.store.Tamper("obj", true, func([]byte) []byte { return []byte("v2") }); err != nil {
		t.Fatal(err)
	}
	if _, err := w.client.Download(conn, "tcp-t2", "obj", "tcp-t1"); !errors.Is(err, core.ErrIntegrity) {
		t.Fatalf("err = %v, want ErrIntegrity", err)
	}
}

func TestTCPResolveThroughTTP(t *testing.T) {
	w := newTCPWorld(t)
	conn, err := transport.DialTCP(w.provAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	w.provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	if _, err := w.client.Upload(conn, "tcp-r", "obj", []byte("v")); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("setup: %v", err)
	}
	w.provider.SetMisbehavior(core.Misbehavior{})

	ttpConn, err := transport.DialTCP(w.ttpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer ttpConn.Close()
	res, err := w.client.Resolve(ttpConn, "tcp-r", "no NRR over TCP")
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != "continue" || res.PeerEvidence == nil {
		t.Fatalf("resolve over TCP: %+v", res)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	w := newTCPWorld(t)
	const n = 6
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			conn, err := transport.DialTCP(w.provAddr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			txn := cryptoutil.MustNonce()
			_, err = w.client.Upload(conn, string(rune('a'+i))+"-"+cryptoutil.Digest{Alg: cryptoutil.MD5, Sum: txn}.Hex()[:8], "obj-"+string(rune('a'+i)), bytes.Repeat([]byte{byte(i)}, 2048))
			errs <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(w.store.Keys()); got != n {
		t.Fatalf("stored %d objects, want %d", got, n)
	}
}

// TestMixedIdentityRejectedOverTCP: a client using a key from a
// different keystore (different CA) is rejected by the provider.
func TestMixedIdentityRejectedOverTCP(t *testing.T) {
	w := newTCPWorld(t)
	// Build an impostor with its own CA.
	otherDir := t.TempDir()
	if err := keystore.Init(otherDir, []string{"alice", "bob", "ttp"}, 1024, time.Hour); err != nil {
		t.Fatal(err)
	}
	otherWorld, err := keystore.LoadWorld(otherDir)
	if err != nil {
		t.Fatal(err)
	}
	otherCA, err := otherWorld.CAKey()
	if err != nil {
		t.Fatal(err)
	}
	id, err := keystore.LoadIdentity(otherDir, "alice")
	if err != nil {
		t.Fatal(err)
	}
	impostor, err := core.NewClient(core.Options{
		Identity:        id,
		CAKey:           otherCA,
		Directory:       otherWorld.Lookup,
		ResponseTimeout: 500 * time.Millisecond,
	}, "bob", "ttp")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := transport.DialTCP(w.provAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = impostor.Upload(conn, "imp-1", "obj", []byte("v"))
	if err == nil {
		t.Fatal("impostor upload accepted")
	}
	if _, serr := w.store.Get("obj"); serr == nil {
		t.Fatal("impostor data stored")
	}
}
