package integration

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCLIShardedLifecycle drives `nrserver -shards 4` exactly as
// README's sharding section documents: uploads spread across per-shard
// WAL directories, a kill-and-restart recovers every shard in
// parallel, and evidence uploaded before the crash still downloads and
// verifies after it — proving the pinned ring routes each transaction
// back to the journal that holds it.
func TestCLIShardedLifecycle(t *testing.T) {
	bins := cliBinaries(t)
	work := t.TempDir()
	state := filepath.Join(work, "state")
	blobs := filepath.Join(work, "blobs")
	walDir := filepath.Join(work, "wal")
	arcDir := filepath.Join(work, "cold")

	run(t, true, filepath.Join(bins, "pkitool"), "init", "-state", state, "-bits", "1024")

	provAddr := "127.0.0.1:29781"
	serverArgs := []string{
		"-state", state, "-listen", provAddr, "-store", blobs,
		"-shards", "4", "-wal-dir", walDir, "-archive-dir", arcDir,
	}
	server := exec.Command(filepath.Join(bins, "nrserver"), serverArgs...)
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	stop := func() { server.Process.Kill(); server.Wait() }
	t.Cleanup(func() { stop() })
	time.Sleep(400 * time.Millisecond)

	// Enough distinct txn IDs that the ring cannot put them all on one
	// shard (TestRingBalance bounds the odds far tighter than this).
	payload := filepath.Join(work, "obj.txt")
	if err := os.WriteFile(payload, []byte("sharded payload\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	const uploads = 8
	for i := 0; i < uploads; i++ {
		run(t, true, filepath.Join(bins, "nrclient"), "upload",
			"-state", state, "-server", provAddr,
			"-txn", fmt.Sprintf("shard-txn-%d", i),
			"-key", fmt.Sprintf("docs/obj-%d", i), "-file", payload)
	}

	// The on-disk contract: one shard-NN WAL directory per shard, and
	// the journaled traffic spread over more than one of them.
	populated := 0
	for i := 0; i < 4; i++ {
		sub := filepath.Join(walDir, fmt.Sprintf("shard-%02d", i))
		entries, err := os.ReadDir(sub)
		if err != nil {
			t.Fatalf("shard WAL dir %s missing: %v", sub, err)
		}
		var bytes int64
		for _, e := range entries {
			if info, err := e.Info(); err == nil {
				bytes += info.Size()
			}
		}
		if bytes > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("%d uploads landed on %d shard journal(s); routing is not spreading", uploads, populated)
	}

	// SIGKILL and restart on the same directories: recovery must fan
	// out per shard and re-materialize every session.
	stop()
	server = exec.Command(filepath.Join(bins, "nrserver"), serverArgs...)
	// The child inherits the file descriptor directly (no in-process
	// copier goroutine to race with), and the test reads the file.
	logPath := filepath.Join(work, "restart.log")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	server.Stdout, server.Stderr = logFile, logFile
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	logFile.Close()
	stop = func() { server.Process.Kill(); server.Wait() }

	var restartLog string
	deadline := time.Now().Add(10 * time.Second)
	for {
		b, _ := os.ReadFile(logPath)
		restartLog = string(b)
		if strings.Contains(restartLog, "4 shards recovered in parallel") &&
			strings.Contains(restartLog, "listening on") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restart log missing parallel shard recovery:\n%s", restartLog)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Pre-crash evidence survives: a download against the recovered
	// server still verifies against the original upload's digests.
	got := filepath.Join(work, "got.txt")
	dl := run(t, true, filepath.Join(bins, "nrclient"), "download",
		"-state", state, "-server", provAddr,
		"-txn", "shard-dl-0", "-key", "docs/obj-3", "-upload-txn", "shard-txn-3", "-out", got)
	if !strings.Contains(dl, "integrity verified against upload: true") {
		t.Fatalf("post-recovery download: %s", dl)
	}
}
