package integration

import (
	"crypto/md5"
	"encoding/hex"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildCLIs compiles the command binaries once per test process.
var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

func cliBinaries(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	cliOnce.Do(func() {
		dir, err := os.MkdirTemp("", "tpnr-cli-*")
		if err != nil {
			cliErr = err
			return
		}
		cliDir = dir
		cmd := exec.Command("go", "build", "-o", dir, "./cmd/...")
		cmd.Dir = moduleRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			cliErr = err
			t.Logf("go build output:\n%s", out)
		}
	})
	if cliErr != nil {
		t.Fatalf("building CLIs: %v", cliErr)
	}
	return cliDir
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

// run executes a binary and returns combined output; exit status is
// checked against wantOK.
func run(t *testing.T, wantOK bool, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if (err == nil) != wantOK {
		t.Fatalf("%s %s: err=%v, wantOK=%v\noutput:\n%s", filepath.Base(bin), strings.Join(args, " "), err, wantOK, out)
	}
	return string(out)
}

// TestCLIFullLifecycle drives the binaries exactly as README documents:
// pkitool init → nrserver + ttpd → upload → download → insider tamper
// → failed download (exit 3) → arbiterd verdict → resolve.
func TestCLIFullLifecycle(t *testing.T) {
	bins := cliBinaries(t)
	work := t.TempDir()
	state := filepath.Join(work, "state")
	blobs := filepath.Join(work, "blobs")

	out := run(t, true, filepath.Join(bins, "pkitool"), "init", "-state", state, "-bits", "1024")
	if !strings.Contains(out, "initialized") {
		t.Fatalf("pkitool: %s", out)
	}

	// Start daemons on dynamic-ish ports (fixed high ports per test
	// run; loopback).
	provAddr := "127.0.0.1:29751"
	ttpAddr := "127.0.0.1:29752"
	server := exec.Command(filepath.Join(bins, "nrserver"), "-state", state, "-listen", provAddr, "-store", blobs)
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Process.Kill(); server.Wait() })
	ttpd := exec.Command(filepath.Join(bins, "ttpd"), "-state", state, "-listen", ttpAddr, "-peer", "bob="+provAddr)
	if err := ttpd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ttpd.Process.Kill(); ttpd.Wait() })
	time.Sleep(400 * time.Millisecond) // daemels bind

	// Upload.
	payload := filepath.Join(work, "report.txt")
	if err := os.WriteFile(payload, []byte("quarterly totals: 1000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run(t, true, filepath.Join(bins, "nrclient"), "upload",
		"-state", state, "-server", provAddr, "-txn", "t1", "-key", "docs/report", "-file", payload)
	if !strings.Contains(out, "evidence archived") {
		t.Fatalf("upload: %s", out)
	}

	// Clean download.
	got := filepath.Join(work, "got.txt")
	out = run(t, true, filepath.Join(bins, "nrclient"), "download",
		"-state", state, "-server", provAddr, "-txn", "t2", "-key", "docs/report", "-upload-txn", "t1", "-out", got)
	if !strings.Contains(out, "integrity verified against upload: true") {
		t.Fatalf("download: %s", out)
	}
	gotData, err := os.ReadFile(got)
	if err != nil || string(gotData) != "quarterly totals: 1000\n" {
		t.Fatalf("downloaded %q, %v", gotData, err)
	}

	// Insider tamper: rewrite blob + fix metadata MD5 (the E5 move),
	// directly against the server's disk store.
	tamperDiskStore(t, blobs, "1000", "9999")

	// Download now fails with exit status 3.
	cmd := exec.Command(filepath.Join(bins, "nrclient"), "download",
		"-state", state, "-server", provAddr, "-txn", "t3", "-key", "docs/report", "-upload-txn", "t1")
	outB, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("tampered download succeeded:\n%s", outB)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 3 {
		t.Fatalf("tampered download exit: %v\n%s", err, outB)
	}
	if !strings.Contains(string(outB), "INTEGRITY FAILURE") {
		t.Fatalf("tampered download output:\n%s", outB)
	}

	// Arbitrate: provider produces the (tampered) blob.
	blobFile := findBlobFile(t, blobs)
	out = run(t, true, filepath.Join(bins, "arbiterd"),
		"-state", state, "-txn", "t1", "-key", "docs/report", "-produced", blobFile)
	if !strings.Contains(out, "VERDICT: provider-at-fault") {
		t.Fatalf("arbiterd: %s", out)
	}

	// Resolve (re-obtains the NRR through the TTP).
	out = run(t, true, filepath.Join(bins, "nrclient"), "resolve",
		"-state", state, "-ttp", ttpAddr, "-txn", "t1", "-report", "cli integration")
	if !strings.Contains(out, "resolve outcome: continue") {
		t.Fatalf("resolve: %s", out)
	}

	// pkitool show lists the archived evidence.
	out = run(t, true, filepath.Join(bins, "pkitool"), "show", "-state", state)
	for _, want := range []string{"alice", "bob", "ttp", "t1.own.NRO.json", "t1.peer.NRR.json"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pkitool show missing %q:\n%s", want, out)
		}
	}
}

// tamperDiskStore performs the careful-insider rewrite against the
// nrserver's on-disk store: mutate the blob, recompute the sidecar MD5.
func tamperDiskStore(t *testing.T, blobDir, old, new string) {
	t.Helper()
	entries, err := os.ReadDir(blobDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".blob") {
			continue
		}
		blobPath := filepath.Join(blobDir, e.Name())
		data, err := os.ReadFile(blobPath)
		if err != nil {
			t.Fatal(err)
		}
		mutated := strings.Replace(string(data), old, new, 1)
		if mutated == string(data) {
			continue
		}
		if err := os.WriteFile(blobPath, []byte(mutated), 0o644); err != nil {
			t.Fatal(err)
		}
		// Fix the metadata sidecar like a careful insider.
		metaPath := strings.TrimSuffix(blobPath, ".blob") + ".meta"
		meta, err := os.ReadFile(metaPath)
		if err != nil {
			t.Fatal(err)
		}
		sum := md5hex([]byte(mutated))
		// The sidecar is JSON {"md5_hex":"..."}; replace the digest.
		start := strings.Index(string(meta), `"md5_hex":"`)
		if start < 0 {
			t.Fatal("no md5_hex in sidecar")
		}
		start += len(`"md5_hex":"`)
		end := strings.Index(string(meta)[start:], `"`)
		patched := string(meta)[:start] + sum + string(meta)[start+end:]
		if err := os.WriteFile(metaPath, []byte(patched), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatal("no blob contained the pattern")
}

func findBlobFile(t *testing.T, blobDir string) string {
	t.Helper()
	entries, err := os.ReadDir(blobDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".blob") {
			return filepath.Join(blobDir, e.Name())
		}
	}
	t.Fatal("no blob file found")
	return ""
}

// md5hex is a tiny local helper (kept here to avoid importing the
// whole cryptoutil package into a test that models an EXTERNAL
// attacker who has no access to our libraries).
func md5hex(b []byte) string {
	sum := md5.Sum(b)
	return hex.EncodeToString(sum[:])
}
