package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/arbitrator"
	"repro/internal/cloudsim/awssim"
	"repro/internal/cloudsim/azuresim"
	"repro/internal/cloudsim/gaesim"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/deploy"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// E5 regenerates Fig. 5 — the common integrity gap. On each platform
// simulator the same insider attack runs: upload clean data, tamper in
// storage, download again. Two insider variants are tried: the sloppy
// one (data changed, platform metadata left stale) and the careful one
// (metadata fixed up). The platform's own integrity check is then
// applied to the download, reproducing the §2.4 analysis that the
// platforms' per-session checks cannot cover the storage dwell — and
// the TPNR row shows the paper's fix closing the gap with attribution.
func E5() (Result, error) {
	var b strings.Builder
	original := []byte("ledger: total = 1000")
	tamper := func(data []byte) []byte {
		return bytes.Replace(data, []byte("1000"), []byte("9999"), 1)
	}

	tb := metrics.NewTable("Fig. 5 — in-storage tampering vs per-session checks",
		"platform", "returned digest", "sloppy tamper detected", "careful tamper detected", "fault attributable")

	// --- Azure: returns the STORED MD5_1 (§2.4). ---
	azureDetect := func(careful bool) (bool, error) {
		svc := azuresim.New(storage.NewMem(nil), func() time.Time { return e1Date })
		key, err := svc.CreateAccount("user")
		if err != nil {
			return false, err
		}
		client := azuresim.NewClient(svc, "user", key)
		client.PutBlock("/ledger", original)
		if err := svc.Store().(storage.Tamperer).Tamper("user/ledger", careful, func(d []byte) []byte { return tamper(d) }); err != nil {
			return false, err
		}
		_, resp := client.GetBlock("/ledger")
		return !azuresim.VerifyMD5(resp), nil
	}
	azSloppy, err := azureDetect(false)
	if err != nil {
		return Result{}, err
	}
	azCareful, err := azureDetect(true)
	if err != nil {
		return Result{}, err
	}
	tb.AddRow("Azure (sim)", "stored MD5_1", azSloppy, azCareful, false)

	// --- AWS: returns a RECOMPUTED MD5_2 (§2.4). ---
	awsDetect := func(careful bool) (bool, error) {
		svc := awssim.New(storage.NewMem(nil), awssim.DefaultParams())
		secret, err := svc.CreateAccount("AKIA")
		if err != nil {
			return false, err
		}
		mac := awssim.RequestMAC(secret, "PUT", "bucket/ledger")
		if _, err := svc.S3Put("AKIA", mac, "bucket/ledger", original); err != nil {
			return false, err
		}
		if err := svc.Store().(storage.Tamperer).Tamper("bucket/ledger", careful, func(d []byte) []byte { return tamper(d) }); err != nil {
			return false, err
		}
		getMAC := awssim.RequestMAC(secret, "GET", "bucket/ledger")
		data, md5d, err := svc.S3Get("AKIA", getMAC, "bucket/ledger")
		if err != nil {
			return false, err
		}
		// The client-side transfer check: data vs returned digest.
		return !cryptoutil.Sum(cryptoutil.MD5, data).Equal(md5d), nil
	}
	awsSloppy, err := awsDetect(false)
	if err != nil {
		return Result{}, err
	}
	awsCareful, err := awsDetect(true)
	if err != nil {
		return Result{}, err
	}
	tb.AddRow("AWS S3 (sim)", "recomputed MD5_2", awsSloppy, awsCareful, false)

	// --- GAE/SDC: returns no digest at all. ---
	gaeDetect := func(careful bool) (bool, error) {
		src := storage.NewMem(nil)
		src.Put("docs/ledger", original, cryptoutil.Digest{})
		tunnel := gaesim.NewTunnelServer()
		key := cryptoutil.InsecureTestKey(91)
		der := key.Signer().Public().Marshal()
		tunnel.RegisterConsumer("c", der)
		token, err := tunnel.IssueToken()
		if err != nil {
			return false, err
		}
		dep := &gaesim.Deployment{Tunnel: tunnel, Agent: gaesim.NewAgent(src, []gaesim.Rule{{ViewerID: "*", ResourcePrefix: "docs/"}})}
		if err := src.Tamper("docs/ledger", careful, func(d []byte) []byte { return tamper(d) }); err != nil {
			return false, err
		}
		req, err := gaesim.BuildSignedRequest(key, "o", "v", "i", "a", "c", token, "docs/ledger")
		if err != nil {
			return false, err
		}
		data, _, err := dep.Request(req)
		if err != nil {
			return false, err
		}
		// The SDC client has no digest to check: detection only if the
		// bytes visibly differ from... nothing. It cannot detect.
		_ = data
		return false, nil
	}
	gaeSloppy, err := gaeDetect(false)
	if err != nil {
		return Result{}, err
	}
	gaeCareful, err := gaeDetect(true)
	if err != nil {
		return Result{}, err
	}
	tb.AddRow("GAE SDC (sim)", "none", gaeSloppy, gaeCareful, false)

	// --- TPNR: the paper's fix. ---
	tpnrDetect, tpnrAttrib, err := e5TPNR(original, tamper)
	if err != nil {
		return Result{}, err
	}
	tb.AddRow("TPNR (this paper)", "both-signed agreed digest", tpnrDetect, tpnrDetect, tpnrAttrib)
	b.WriteString(tb.String())
	b.WriteString(`
Reading: every platform's own check passes once the insider fixes the
metadata (and AWS's recomputed MD5_2 hides even the sloppy insider).
None of the platforms can ATTRIBUTE a detected fault — the §2.4
repudiation problem. TPNR detects both variants and the arbitrator
attributes fault from the signed agreed digest.
`)

	return Result{
		ID:    "E5",
		Title: "Fig. 5 — the upload-to-download integrity gap across platforms, and TPNR closing it",
		Text:  b.String(),
	}, nil
}

// e5TPNR runs the tamper scenario against the full TPNR deployment and
// reports (detected, attributable).
func e5TPNR(original []byte, tamper func([]byte) []byte) (bool, bool, error) {
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 5 * time.Second})
	if err != nil {
		return false, false, err
	}
	defer d.Close()
	conn, err := d.DialProvider()
	if err != nil {
		return false, false, err
	}
	defer conn.Close()
	up, err := d.Client.Upload(context.Background(), conn, "txn-e5", "ledger", original)
	if err != nil {
		return false, false, err
	}
	if err := d.Store.(storage.Tamperer).Tamper("ledger", true, tamper); err != nil {
		return false, false, err
	}
	_, derr := d.Client.Download(context.Background(), conn, "txn-e5-dl", "ledger", "txn-e5")
	detected := errors.Is(derr, core.ErrIntegrity)

	// Attribution: submit the evidence to the arbitrator.
	arb := arbitrator.NewWithKey(d.CA.Key(), d.CA.Lookup, nil)
	obj, _ := d.Store.Get("ledger")
	dec := arb.Decide(&arbitrator.Case{
		TxnID:        "txn-e5",
		ObjectKey:    "ledger",
		ClaimantID:   deploy.ClientName,
		RespondentID: deploy.ProviderName,
		ClaimantNRO:  up.NRO,
		ClaimantNRR:  up.NRR,
		ProducedData: obj.Data,
	})
	attributable := dec.Verdict == arbitrator.VerdictProviderFault
	if !detected || !attributable {
		return detected, attributable, fmt.Errorf("experiments: E5 TPNR row wrong: detected=%v verdict=%v", detected, dec.Verdict)
	}
	return detected, attributable, nil
}
