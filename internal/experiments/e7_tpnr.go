package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/arbitrator"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// E7 regenerates Fig. 6 — the TPNR work flows — by executing each mode
// live and printing its transcript: (a) the four roles, (b) the
// Normal and Abort modes with off-line TTP, (c) the Resolve mode with
// in-line TTP, and (d) the disputation before the arbitrator.
func E7() (Result, error) {
	var b strings.Builder
	b.WriteString("Roles (Fig. 6a): Client (Alice) — Cloud Storage Provider (Bob) — TTP — Arbitrator\n\n")

	// --- Fig. 6b upper: Normal mode (off-line TTP, 2 steps). ---
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 5 * time.Second})
	if err != nil {
		return Result{}, err
	}
	defer d.Close()
	conn, err := d.DialProvider()
	if err != nil {
		return Result{}, err
	}
	defer conn.Close()

	normal := metrics.NewTable("Fig. 6b — Normal mode (off-line TTP)", "step", "flow", "content")
	up, err := d.Client.Upload(context.Background(), conn, "txn-normal", "docs/report", []byte("annual report"))
	if err != nil {
		return Result{}, err
	}
	normal.AddRow(1, "Alice → Bob", fmt.Sprintf("data (%d bytes) + sealed NRO {Sign(H(data)), Sign(plaintext)}", len("annual report")))
	normal.AddRow(2, "Bob → Alice", "sealed NRR committing to the same digests")
	normal.AddRow("", "result", fmt.Sprintf("agreed md5=%s; TTP messages: %d", up.NRR.Header.DataMD5.Hex()[:16]+"…", d.TTPCounters.Get(metrics.MsgsRecv)))
	b.WriteString(normal.String())
	b.WriteString("\n")

	// --- Fig. 6b lower: Abort mode (still off-line TTP). ---
	d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	shortD, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 200 * time.Millisecond})
	if err != nil {
		return Result{}, err
	}
	defer shortD.Close()
	shortConn, err := shortD.DialProvider()
	if err != nil {
		return Result{}, err
	}
	defer shortConn.Close()
	shortD.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	if _, err := shortD.Client.Upload(context.Background(), shortConn, "txn-abort", "k", []byte("v")); !errors.Is(err, core.ErrTimeout) {
		return Result{}, fmt.Errorf("experiments: abort setup: %v", err)
	}
	shortD.Provider.SetMisbehavior(core.Misbehavior{})
	ab, err := shortD.Client.Abort(context.Background(), shortConn, "txn-abort", "no NRR before time limit; canceling")
	if err != nil {
		return Result{}, err
	}
	abort := metrics.NewTable("Fig. 6b — Abort mode (off-line TTP)", "step", "flow", "content")
	abort.AddRow(1, "Alice → Bob", "abort request: transaction ID + abort NRO")
	abort.AddRow(2, "Bob → Alice", fmt.Sprintf("%s + NRR (%q)", ab.Receipt.Header.Kind, ab.Receipt.Header.Note))
	abort.AddRow("", "result", fmt.Sprintf("accepted=%v; no TTP involved", ab.Accepted))
	b.WriteString(abort.String())
	b.WriteString("\n")

	// --- Fig. 6c: Resolve mode (in-line TTP). ---
	rd, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 200 * time.Millisecond})
	if err != nil {
		return Result{}, err
	}
	defer rd.Close()
	rConn, err := rd.DialProvider()
	if err != nil {
		return Result{}, err
	}
	defer rConn.Close()
	rd.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	rd.Client.Upload(context.Background(), rConn, "txn-resolve", "k", []byte("v"))
	rd.Provider.SetMisbehavior(core.Misbehavior{})
	ttpConn, err := rd.DialTTP()
	if err != nil {
		return Result{}, err
	}
	defer ttpConn.Close()
	res, err := rd.Client.Resolve(context.Background(), ttpConn, "txn-resolve", "no response from Bob within time limit")
	if err != nil {
		return Result{}, err
	}
	resolve := metrics.NewTable("Fig. 6c — Resolve mode (in-line TTP)", "step", "flow", "content")
	resolve.AddRow(1, "Alice → TTP", "transaction ID + NRO + report of anomalies")
	resolve.AddRow(2, "TTP", "verify genuineness and consistency of the claim")
	resolve.AddRow(3, "TTP → Bob", "timestamped resolve query")
	resolve.AddRow(4, "Bob → TTP", "NRR + action")
	resolve.AddRow(5, "TTP → Alice", fmt.Sprintf("relayed NRR; outcome %q", res.Outcome))
	resolve.AddRow("", "result", fmt.Sprintf("peer evidence delivered=%v", res.PeerEvidence != nil))
	b.WriteString(resolve.String())
	b.WriteString("\n")

	// --- Fig. 6d: Disputation before the arbitrator. ---
	if err := d.Store.(storage.Tamperer).Tamper("docs/report", true, func([]byte) []byte {
		return []byte("doctored report")
	}); err != nil {
		return Result{}, err
	}
	arb := arbitrator.NewWithKey(d.CA.Key(), d.CA.Lookup, nil)
	obj, _ := d.Store.Get("docs/report")
	dec := arb.Decide(&arbitrator.Case{
		TxnID:        "txn-normal",
		ObjectKey:    "docs/report",
		ClaimantID:   deploy.ClientName,
		RespondentID: deploy.ProviderName,
		ClaimantNRO:  up.NRO,
		ClaimantNRR:  up.NRR,
		ProducedData: obj.Data,
	})
	disp := metrics.NewTable("Fig. 6d — Disputation", "step", "content")
	disp.AddRow(1, "Arbitrator requests evidence from Alice and Bob")
	for i, f := range dec.Findings {
		disp.AddRow(i+2, f)
	}
	disp.AddRow("", "VERDICT: "+dec.Verdict.String())
	b.WriteString(disp.String())

	return Result{
		ID:    "E7",
		Title: "Fig. 6 — TPNR work flows: Normal, Abort, Resolve, Disputation (executed)",
		Text:  b.String(),
	}, nil
}
