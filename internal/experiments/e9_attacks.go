package experiments

import (
	"strings"

	"repro/internal/attack"
	"repro/internal/metrics"
)

// E9 renders the §5 robustness analysis as a measured matrix: each of
// the five classic attacks is EXECUTED against the TPNR deployment and
// against a naive MD5-only baseline. The paper argues TPNR resists all
// five; the experiment verifies it, and the naive column shows the
// attacks are real (they succeed where the defenses are absent).
func E9() (Result, error) {
	outcomes, err := attack.Gauntlet()
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	tb := metrics.NewTable("§5 — attack robustness matrix (executed)",
		"attack", "vs TPNR", "vs naive baseline", "TPNR defense")
	defense := map[string]string{
		attack.MITM:         "authenticated keys (PKI) + signed evidence over data hash (§5.1)",
		attack.Reflection:   "asymmetric messages with sender/recipient IDs (§5.2)",
		attack.Interleaving: "signature binds transaction ID; one round per session (§5.3)",
		attack.Replay:       "unique sequence number + nonce under sender signature (§5.4)",
		attack.Timeliness:   "time-limit field bounds message acceptance (§5.5)",
	}
	byKey := map[string]map[string]attack.Outcome{}
	for _, o := range outcomes {
		if byKey[o.Attack] == nil {
			byKey[o.Attack] = map[string]attack.Outcome{}
		}
		byKey[o.Attack][o.Target] = o
	}
	render := func(o attack.Outcome) string {
		if o.Succeeded {
			return "SUCCEEDED"
		}
		return "prevented"
	}
	for _, name := range attack.AllAttacks {
		tb.AddRow(name, render(byKey[name]["TPNR"]), render(byKey[name]["naive"]), defense[name])
	}
	b.WriteString(tb.String())
	b.WriteString("\nDetails:\n")
	for _, o := range outcomes {
		b.WriteString("  [" + o.Target + "] " + o.Attack + ": " + o.Detail + "\n")
	}
	return Result{
		ID:    "E9",
		Title: "§5 — robustness of the NR protocol under five classic attacks",
		Text:  b.String(),
	}, nil
}
