// Package experiments regenerates every table and figure of the paper
// as an executable artifact (the E1–E10 index in DESIGN.md):
//
//	E1  Table 1    Azure REST requests with SharedKey + Content-MD5
//	E2  Fig. 2     AWS import/export flow + shipping-dominance table
//	E3  Fig. 3     Azure secure data access procedure
//	E4  Fig. 4     Google SDC work flow
//	E5  Fig. 5     the upload-to-download integrity gap, on all three sims
//	E6  §3         the four bridging solutions compared
//	E7  Fig. 6     TPNR Normal / Abort / Resolve / Disputation transcripts
//	E8  §4.4       TPNR vs traditional NR step comparison
//	E9  §5         attack robustness matrix
//	E10 §6         performance study the paper defers to future work
//
// Each experiment returns a Result with rendered text; cmd/experiments
// prints them and EXPERIMENTS.md records paper-vs-measured.
package experiments

import "fmt"

// Result is one regenerated artifact.
type Result struct {
	// ID is the experiment identifier ("E1"…"E10").
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Text is the rendered transcript/table output.
	Text string
}

// Runner produces one experiment.
type Runner func() (Result, error)

// All runs every paper experiment (E1–E10) followed by the extension
// experiments (X1–X2).
func All() ([]Result, error) {
	runners := []Runner{E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, X1, X2}
	out := make([]Result, 0, len(runners))
	for _, r := range runners {
		res, err := r()
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		out = append(out, res)
	}
	return out, nil
}

// ByID returns the runner for an experiment ID, or nil.
func ByID(id string) Runner {
	switch id {
	case "E1":
		return E1
	case "E2":
		return E2
	case "E3":
		return E3
	case "E4":
		return E4
	case "E5":
		return E5
	case "E6":
		return E6
	case "E7":
		return E7
	case "E8":
		return E8
	case "E9":
		return E9
	case "E10":
		return E10
	case "X1":
		return X1
	case "X2":
		return X2
	default:
		return nil
	}
}
