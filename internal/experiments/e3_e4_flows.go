package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cloudsim/azuresim"
	"repro/internal/cloudsim/gaesim"
	"repro/internal/cryptoutil"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// E3 regenerates Fig. 3 — the Azure secure data access procedure:
// account creation, the 256-bit secret key, the per-request HMAC
// SHA256 signature, server-side verification, and the Content-MD5
// integrity check, executed live.
func E3() (Result, error) {
	var b strings.Builder
	svc := azuresim.New(storage.NewMem(nil), func() time.Time { return e1Date })

	steps := metrics.NewTable("Fig. 3 — security data access procedure", "step", "actor", "action", "result")
	key, err := svc.CreateAccount("jerry")
	if err != nil {
		return Result{}, err
	}
	steps.AddRow(1, "user", "create account at the Azure portal", "account 'jerry'")
	steps.AddRow(2, "portal", "return 256-bit secret key", fmt.Sprintf("%d-bit key", len(key)*8))

	client := azuresim.NewClient(svc, "jerry", key)
	body := []byte("blob contents to protect")
	putReq, putResp := client.PutBlock("/container/blob", body)
	steps.AddRow(3, "user", "create HMAC-SHA256 signature for the PUT request", putReq.Authorization[:40]+"…")
	steps.AddRow(4, "server", "verify HMAC signature; check Content-MD5", fmt.Sprintf("status %d", putResp.Status))

	getReq, getResp := client.GetBlock("/container/blob")
	steps.AddRow(5, "user", "create HMAC-SHA256 signature for the GET request", getReq.Authorization[:40]+"…")
	steps.AddRow(6, "server", "verify signature; return blob with stored Content-MD5", fmt.Sprintf("status %d, md5 %s", getResp.Status, getResp.ContentMD5))
	ok := azuresim.VerifyMD5(getResp)
	steps.AddRow(7, "user", "check message content integrity against Content-MD5", fmt.Sprintf("match=%v", ok))
	b.WriteString(steps.String())

	return Result{
		ID:    "E3",
		Title: "Fig. 3 — Azure secure data access procedure (account → key → HMAC → MD5 check)",
		Text:  b.String(),
	}, nil
}

// E4 regenerates Fig. 4 — the Google Secure Data Connector work flow,
// executed live through the tunnel/SDC/resource-rule pipeline,
// including a rejected unauthorized request.
func E4() (Result, error) {
	var b strings.Builder

	src := storage.NewMem(nil)
	if _, err := src.Put("crm/accounts.csv", []byte("acme,42\nglobex,7"), cryptoutil.Digest{}); err != nil {
		return Result{}, err
	}
	tunnel := gaesim.NewTunnelServer()
	key := cryptoutil.InsecureTestKey(90)
	der := key.Signer().Public().Marshal()
	tunnel.RegisterConsumer("consumer-apps", der)
	token, err := tunnel.IssueToken()
	if err != nil {
		return Result{}, err
	}
	agent := gaesim.NewAgent(src, []gaesim.Rule{{ViewerID: "alice", ResourcePrefix: "crm/"}})
	dep := &gaesim.Deployment{Tunnel: tunnel, Agent: agent}

	req, err := gaesim.BuildSignedRequest(key, "owner-corp", "alice", "inst-1", "app-1", "consumer-apps", token, "crm/accounts.csv")
	if err != nil {
		return Result{}, err
	}
	data, steps, err := dep.Request(req)
	if err != nil {
		return Result{}, err
	}
	flow := metrics.NewTable("Fig. 4 — SDC work flow (authorized request)", "hop", "detail")
	for _, s := range steps {
		flow.AddRow(s.Hop, s.Detail)
	}
	flow.AddRow("result", fmt.Sprintf("%d bytes delivered", len(data)))
	b.WriteString(flow.String())
	b.WriteString("\n")

	// A second, unauthorized request shows the resource rules working.
	req2, err := gaesim.BuildSignedRequest(key, "owner-corp", "mallory", "inst-1", "app-1", "consumer-apps", token, "crm/accounts.csv")
	if err != nil {
		return Result{}, err
	}
	_, steps2, rerr := dep.Request(req2)
	denied := metrics.NewTable("Fig. 4 — SDC work flow (unauthorized viewer)", "hop", "detail")
	for _, s := range steps2 {
		denied.AddRow(s.Hop, s.Detail)
	}
	denied.AddRow("result", fmt.Sprintf("rejected: %v", rerr))
	b.WriteString(denied.String())

	return Result{
		ID:    "E4",
		Title: "Fig. 4 — Google Secure Data Connector work flow with signed requests",
		Text:  b.String(),
	}, nil
}
