package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cloudsim/awssim"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// E2 regenerates Fig. 2: the AWS import/export flow, executed end to
// end (manifest, signature file, device, validation, MD5 job log), a
// step-by-step timeline, and the §6 shipping-dominance table showing
// protocol time is trivial next to surface mail.
func E2() (Result, error) {
	var b strings.Builder

	// Live run of the import flow against the simulator.
	svc := awssim.New(storage.NewMem(nil), awssim.DefaultParams())
	secret, err := svc.CreateAccount("AKIAALICE")
	if err != nil {
		return Result{}, err
	}
	user := &awssim.User{AccessKeyID: "AKIAALICE", Secret: secret}
	manifest, sig := user.BuildManifest("JOB-2010-06", "DEV-42", "bucket/archive", "import")
	if err := svc.ReceiveManifestMail(awssim.Email{From: "AKIAALICE", To: "aws", Subject: "manifest JOB-2010-06", Manifest: manifest}); err != nil {
		return Result{}, err
	}
	dev := awssim.NewDevice("DEV-42")
	dev.Files["q1.db"] = []byte("first quarter ledger")
	dev.Files["q2.db"] = []byte("second quarter ledger")
	log, err := svc.ProcessImport(sig, dev)
	if err != nil {
		return Result{}, err
	}
	fmt.Fprintf(&b, "--- executed import job %s: status %s ---\n", log.JobID, log.Status)
	logTable := metrics.NewTable("e-mailed AWS Import Log (Fig. 2 'email MD5')", "key", "bytes", "md5")
	for _, e := range log.Entries {
		logTable.AddRow(e.Key, e.Bytes, e.MD5.Hex())
	}
	b.WriteString(logTable.String())
	b.WriteString("\n")

	// Fig. 2 timeline with the latency model.
	start := time.Date(2010, 6, 1, 9, 0, 0, 0, time.UTC)
	steps, total := awssim.Timeline(awssim.DefaultParams(), start, 1<<40, "export")
	flow := metrics.NewTable("Fig. 2 flow timeline (1 TiB export)", "t", "actor", "action")
	for _, s := range steps {
		flow.AddRow(s.At.Format("Jan 2 15:04"), s.Actor, s.Action)
	}
	flow.AddRow("", "", fmt.Sprintf("TOTAL elapsed: %v", total))
	b.WriteString(flow.String())
	b.WriteString("\n")

	// Shipping dominance (§6): the NR protocol's execution time is
	// trivial against the mail latency for TB-scale jobs.
	ship := metrics.NewTable("shipping vs protocol time (§6 claim)",
		"payload", "mail (one-way)", "device copy", "protocol msgs (est.)", "protocol share of total")
	for _, tc := range []struct {
		name  string
		bytes int64
	}{
		{"100 GiB", 100 << 30},
		{"1 TiB", 1 << 40},
		{"10 TiB", 10 << 40},
	} {
		params := awssim.DefaultParams()
		_, tot := awssim.Timeline(params, start, tc.bytes, "import")
		copyTime := time.Duration(float64(tc.bytes) / params.CopyBandwidth * float64(time.Second))
		// Protocol messages (manifest e-mail, log e-mail, NR evidence
		// exchange) are a handful of small messages: bound them at one
		// second of wire time, generous by orders of magnitude.
		protocol := time.Second
		share := float64(protocol) / float64(tot+protocol) * 100
		ship.AddRow(tc.name, params.MailLatency, copyTime.Round(time.Second), protocol, fmt.Sprintf("%.5f%%", share))
	}
	b.WriteString(ship.String())

	return Result{
		ID:    "E2",
		Title: "Fig. 2 — AWS Import/Export flow with manifest, signature file and MD5 job log",
		Text:  b.String(),
	}, nil
}
