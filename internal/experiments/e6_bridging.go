package experiments

import (
	"context"
	"strings"
	"time"

	"repro/internal/bridging"
	"repro/internal/cryptoutil"
	"repro/internal/metrics"
	"repro/internal/pki"
	"repro/internal/storage"
)

// e6Solutions lists the §3 schemes in paper order.
var e6Solutions = []bridging.Solution{
	bridging.S1NoTACNoSKS, bridging.S2SKSOnly, bridging.S3TACOnly, bridging.S4TACAndSKS,
}

func e6Bridge(sol bridging.Solution) (*bridging.Bridge, error) {
	ca := pki.NewAuthority("e6-ca", cryptoutil.InsecureTestKey(92))
	now := time.Now()
	mk := func(name string, slot int) (*pki.Identity, error) {
		return pki.NewIdentity(ca, name, cryptoutil.InsecureTestKey(slot), now.Add(-time.Hour), now.Add(24*time.Hour))
	}
	user, err := mk("user", 93)
	if err != nil {
		return nil, err
	}
	provider, err := mk("provider", 94)
	if err != nil {
		return nil, err
	}
	tac, err := mk("tac", 95)
	if err != nil {
		return nil, err
	}
	return bridging.New(sol, user, provider, tac, ca.Lookup, storage.NewMem(nil))
}

// E6 compares the four §3 bridging solutions: upload message cost, and
// dispute power under three scenarios — provider tampering (digest
// fixed), user blackmail (false claim), and a malicious user
// corrupting their own secret share before the dispute.
func E6() (Result, error) {
	var b strings.Builder

	cost := metrics.NewTable("§3 solutions — infrastructure and message cost",
		"solution", "TAC", "SKS", "upload msgs", "dispute msgs (tamper case)")
	verdicts := metrics.NewTable("§3 solutions — dispute outcomes",
		"solution", "provider tamper: user proven", "blackmail: provider proven", "corrupted share: agreed MD5 recovered")

	for _, sol := range e6Solutions {
		// Scenario A: provider tampers (careful insider).
		bA, err := e6Bridge(sol)
		if err != nil {
			return Result{}, err
		}
		if err := bA.Upload(context.Background(), "doc", []byte("original")); err != nil {
			return Result{}, err
		}
		uploadMsgs := bA.Msgs.Upload
		if err := bA.Store().(storage.Tamperer).Tamper("doc", true, func([]byte) []byte { return []byte("tampered") }); err != nil {
			return Result{}, err
		}
		outA, err := bA.Dispute(context.Background(), "doc")
		if err != nil {
			return Result{}, err
		}
		disputeMsgs := bA.Msgs.Dispute

		// Scenario B: blackmail (data intact, user claims loss).
		bB, err := e6Bridge(sol)
		if err != nil {
			return Result{}, err
		}
		if err := bB.Upload(context.Background(), "doc", []byte("original")); err != nil {
			return Result{}, err
		}
		outB, err := bB.Dispute(context.Background(), "doc")
		if err != nil {
			return Result{}, err
		}

		// Scenario C: malicious user corrupts their own share (SKS
		// solutions only; trivially "recovered" for signature schemes).
		recovered := true
		if sol.UsesSKS() {
			bC, err := e6Bridge(sol)
			if err != nil {
				return Result{}, err
			}
			if err := bC.Upload(context.Background(), "doc", []byte("original")); err != nil {
				return Result{}, err
			}
			if err := bC.CorruptUserShare("doc"); err != nil {
				return Result{}, err
			}
			outC, err := bC.Dispute(context.Background(), "doc")
			if err != nil {
				return Result{}, err
			}
			recovered = outC.AgreedMD5Recovered
		}

		cost.AddRow(sol.String(), sol.UsesTAC(), sol.UsesSKS(), uploadMsgs, disputeMsgs)
		verdicts.AddRow(sol.String(), outA.UserProven, outB.ProviderProven, recovered)
	}
	b.WriteString(cost.String())
	b.WriteString("\n")
	b.WriteString(verdicts.String())
	b.WriteString(`
Reading: all four solutions bridge the upload-to-download gap (both
dispute columns true), at increasing message cost. S2's weakness shows
in the last column: without a TAC, a corrupted share destroys the
agreed MD5; S4's third share at the TAC survives it. The paper's §6
notes it "cannot tell which is the most suitable"; the costs here are
the trade-off it defers.
`)

	return Result{
		ID:    "E6",
		Title: "§3 — the four bridging solutions: cost and dispute power",
		Text:  b.String(),
	}, nil
}
