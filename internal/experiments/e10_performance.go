package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/metrics"
	"repro/internal/session"
	"repro/internal/storage"
)

// E10 is the performance study the paper defers ("we leave the
// experimental study of performance evaluation as our next step
// work", §6), on the laptop-scale substrate this reproduction runs on:
//
//	(a) end-to-end upload time: raw store vs TPNR vs traditional NR,
//	    swept over payload sizes — showing the protocol's fixed RSA
//	    cost amortizing into noise as payloads grow;
//	(b) the individual crypto operation costs behind that fixed cost;
//	(c) the MD5-vs-SHA-256 evidence-digest ablation;
//	(d) the replay-window size vs memory ablation.
func E10() (Result, error) {
	var b strings.Builder

	// --- (a) end-to-end sweep. ---
	sweep := metrics.NewTable("(a) upload wall time vs payload size (median of 3)",
		"payload", "raw store put", "TPNR upload", "TPNR overhead", "traditional upload")
	sizes := []int{1 << 10, 64 << 10, 1 << 20, 4 << 20}
	for _, size := range sizes {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		raw := medianOf(3, func() error {
			s := storage.NewMem(nil)
			_, err := s.Put("k", payload, cryptoutil.Digest{})
			return err
		})
		tpnr := medianOf(3, func() error {
			_, _, err := runTPNROnce(payload)
			return err
		})
		trad := medianOf(3, func() error {
			_, _, err := runTraditionalOnce(payload)
			return err
		})
		sweep.AddRow(sizeName(size), raw.Round(time.Microsecond), tpnr.Round(time.Microsecond),
			(tpnr - raw).Round(time.Microsecond), trad.Round(time.Microsecond))
	}
	b.WriteString(sweep.String())
	b.WriteString("\n")

	// --- (b) crypto operation costs. ---
	key := cryptoutil.InsecureTestKey(100)
	signer := key.Signer()
	oneMiB := make([]byte, 1<<20)
	small := make([]byte, 1<<10)
	ops := metrics.NewTable("(b) primitive costs (median of 5)", "operation", "input", "time")
	ops.AddRow("MD5", "1 MiB", medianOf(5, func() error { cryptoutil.Sum(cryptoutil.MD5, oneMiB); return nil }).Round(time.Microsecond))
	ops.AddRow("SHA-256", "1 MiB", medianOf(5, func() error { cryptoutil.Sum(cryptoutil.SHA256, oneMiB); return nil }).Round(time.Microsecond))
	ops.AddRow("RSA-1024 sign", "digest", medianOf(5, func() error { _, err := signer.Sign(small); return err }).Round(time.Microsecond))
	ops.AddRow("RSA-1024 verify", "digest", func() time.Duration {
		sig, _ := signer.Sign(small)
		return medianOf(5, func() error { return signer.Public().Verify(small, sig) }).Round(time.Microsecond)
	}())
	ops.AddRow("hybrid encrypt", "1 KiB", medianOf(5, func() error { _, err := signer.Public().Seal(small); return err }).Round(time.Microsecond))
	ops.AddRow("hybrid decrypt", "1 KiB", func() time.Duration {
		ct, _ := signer.Public().Seal(small)
		return medianOf(5, func() error { _, err := signer.Unseal(ct); return err }).Round(time.Microsecond)
	}())
	b.WriteString(ops.String())
	b.WriteString("\n")

	// --- (c) digest ablation: MD5 (paper) vs SHA-256 (modern). ---
	abl := metrics.NewTable("(c) evidence digest ablation", "digest", "1 MiB hash time", "digest bytes", "2010-era collision status")
	md5t := medianOf(5, func() error { cryptoutil.Sum(cryptoutil.MD5, oneMiB); return nil })
	shat := medianOf(5, func() error { cryptoutil.Sum(cryptoutil.SHA256, oneMiB); return nil })
	abl.AddRow("MD5 (paper)", md5t.Round(time.Microsecond), 16, "chosen-prefix collisions known since 2007")
	abl.AddRow("SHA-256", shat.Round(time.Microsecond), 32, "no known collisions")
	abl.AddRow("TPNR evidence", "carries BOTH", 48, "MD5 for fidelity, SHA-256 for binding")
	b.WriteString(abl.String())
	b.WriteString("\n")

	// --- (d) replay-window ablation. ---
	win := metrics.NewTable("(d) replay window — memory vs detection horizon",
		"window (nonces)", "approx memory", "replay of msg N detected while fewer than N+window msgs seen")
	for _, w := range []int{1 << 8, 1 << 12, 1 << 16, 1 << 20} {
		g := session.NewGuard(w)
		_ = g
		// Each remembered nonce costs ~16 B nonce + map/slice overhead
		// (~64 B realistic).
		win.AddRow(w, sizeName(w*64), "yes")
	}
	b.WriteString(win.String())
	b.WriteString(`
Reading (shape, not absolute numbers): the TPNR overhead column grows
far slower than the payload — it is dominated by the fixed cost of 2
RSA signatures, 1 hybrid encryption and their verification — so its
share of upload time decays from dominating at 1 KiB toward noise as
payloads grow. The traditional protocol's per-byte work (symmetric
encryption + decryption of the ENTIRE payload for the key-commitment,
plus the mandatory TTP round) makes it scale worse: whatever the
small-payload ordering on a given machine, TPNR overtakes it as
payloads grow. Digest relative speed is hardware-dependent (CPUs with
SHA extensions hash SHA-256 faster than MD5); the security argument is
not: MD5 is collision-broken, so TPNR's evidence carries both digests —
a 2010-faithful check and a modern binding.
`)

	return Result{
		ID:    "E10",
		Title: "§6 — deferred performance study: protocol overhead, crypto costs, ablations",
		Text:  b.String(),
	}, nil
}

// medianOf runs f n times and returns the median duration.
func medianOf(n int, f func() error) time.Duration {
	times := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0
		}
		times = append(times, time.Since(start))
	}
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[len(times)/2]
}

// sizeName renders a byte count in human units.
func sizeName(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%d GiB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%d MiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%d KiB", n>>10)
	default:
		return fmt.Sprintf("%d B", n)
	}
}
