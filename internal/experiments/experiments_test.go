package experiments

import (
	"strings"
	"testing"
)

// The tests here assert the SHAPES the DESIGN.md experiment index
// commits to — who wins, what is detected, what is involved — not
// absolute numbers.

func TestE1Shape(t *testing.T) {
	res, err := E1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"PUT http://jerry.blob.core.windows.net",
		"GET http://jerry.blob.core.windows.net",
		"Content-MD5",
		"Authorization: SharedKey jerry:",
		"x-ms-version: 2009-09-19",
		"correctly signed PUT",
	} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("E1 missing %q", want)
		}
	}
	// Every forged/tampered variant must be rejected (status >= 400 →
	// accepted column false).
	for _, line := range strings.Split(res.Text, "\n") {
		if strings.Contains(line, "wrong account key") || strings.Contains(line, "altered after signing") ||
			strings.Contains(line, "does not match the body") || strings.Contains(line, "in the past") {
			if !strings.Contains(line, "false") {
				t.Errorf("E1 validation row should be rejected: %q", line)
			}
		}
		if strings.Contains(line, "correctly signed") && !strings.Contains(line, "true") {
			t.Errorf("E1 valid row should be accepted: %q", line)
		}
	}
}

func TestE2Shape(t *testing.T) {
	res, err := E2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"import job JOB-2010-06: status COMPLETE",
		"e-mailed AWS Import Log",
		"Fig. 2 flow timeline",
		"shipping vs protocol time",
		"sign manifest; e-mail signed manifest to Amazon",
	} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("E2 missing %q", want)
		}
	}
	// Shipping dominance: the protocol share must be far below 1%.
	if !strings.Contains(res.Text, "0.000") {
		t.Error("E2 protocol share should be a vanishing percentage")
	}
}

func TestE3E4Shapes(t *testing.T) {
	r3, err := E3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"256-bit key", "HMAC-SHA256 signature", "match=true"} {
		if !strings.Contains(r3.Text, want) {
			t.Errorf("E3 missing %q", want)
		}
	}
	r4, err := E4()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"user→apps", "tunnel", "resource rules", "bytes delivered", "rejected"} {
		if !strings.Contains(r4.Text, want) {
			t.Errorf("E4 missing %q", want)
		}
	}
}

// TestE5Shape pins the headline result: all three platforms fail to
// detect the careful insider, AWS fails to detect even the sloppy one,
// no platform attributes fault — and TPNR detects and attributes.
func TestE5Shape(t *testing.T) {
	res, err := E5()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(res.Text, "\n")
	row := func(prefix string) string {
		for _, l := range lines {
			if strings.HasPrefix(strings.TrimSpace(l), prefix) {
				return l
			}
		}
		t.Fatalf("E5 missing row %q", prefix)
		return ""
	}
	azure := row("Azure")
	if !strings.Contains(azure, "true") || strings.Count(azure, "false") != 2 {
		t.Errorf("Azure row: sloppy detected, careful+attribution not: %q", azure)
	}
	aws := row("AWS")
	if strings.Count(aws, "false") != 3 {
		t.Errorf("AWS row should detect nothing (recomputed MD5): %q", aws)
	}
	gae := row("GAE")
	if strings.Count(gae, "false") != 3 {
		t.Errorf("GAE row should detect nothing: %q", gae)
	}
	tpnr := row("TPNR")
	if strings.Count(tpnr, "true") != 3 {
		t.Errorf("TPNR row should detect both and attribute: %q", tpnr)
	}
}

func TestE6Shape(t *testing.T) {
	res, err := E6()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"S1", "S2", "S3", "S4", "upload msgs", "dispute outcomes"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("E6 missing %q", want)
		}
	}
	// The S2 corrupted-share weakness must appear as a lone false in
	// the recovered column.
	var s2 string
	for _, l := range strings.Split(res.Text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(l), "S2") && strings.Contains(l, "true") && strings.Contains(l, "false") {
			s2 = l
		}
	}
	if s2 == "" {
		t.Error("E6: S2's corrupted-share failure row not found")
	}
}

func TestE7Shape(t *testing.T) {
	res, err := E7()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Normal mode (off-line TTP)",
		"Abort mode (off-line TTP)",
		"Resolve mode (in-line TTP)",
		"Disputation",
		"VERDICT: provider-at-fault",
		"TTP messages: 0",
	} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("E7 missing %q", want)
		}
	}
}

func TestE8Shape(t *testing.T) {
	res, err := E8()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TPNR (Normal)", "traditional NR", "crossover", "3.0×"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("E8 missing %q", want)
		}
	}
	// The TPNR row must show 2 main steps and 0 TTP messages; the
	// traditional row must show TTP involvement.
	for _, l := range strings.Split(res.Text, "\n") {
		trimmed := strings.TrimSpace(l)
		if strings.HasPrefix(trimmed, "TPNR (Normal)") {
			fields := strings.Fields(l)
			// protocol name occupies two fields ("TPNR" "(Normal)").
			if fields[2] != "2" {
				t.Errorf("TPNR main steps = %s, want 2: %q", fields[2], l)
			}
		}
	}
}

func TestE9Shape(t *testing.T) {
	res, err := E9()
	if err != nil {
		t.Fatal(err)
	}
	for _, atk := range []string{"man-in-the-middle", "reflection", "interleaving", "replay", "timeliness"} {
		found := false
		for _, l := range strings.Split(res.Text, "\n") {
			if strings.HasPrefix(strings.TrimSpace(l), atk) {
				found = true
				if !strings.Contains(l, "prevented") || !strings.Contains(l, "SUCCEEDED") {
					t.Errorf("E9 %s row should be prevented-vs-SUCCEEDED: %q", atk, l)
				}
			}
		}
		if !found {
			t.Errorf("E9 missing attack %s", atk)
		}
	}
}

func TestE10Shape(t *testing.T) {
	res, err := E10()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"upload wall time", "primitive costs", "digest ablation", "replay window", "1 KiB", "4 MiB"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("E10 missing %q", want)
		}
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	results, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 {
		t.Fatalf("All produced %d results", len(results))
	}
	for i, r := range results {
		if r.ID == "" || r.Title == "" || r.Text == "" {
			t.Errorf("result %d incomplete: %+v", i, r.ID)
		}
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "X1", "X2"} {
		if ByID(id) == nil {
			t.Errorf("ByID(%s) = nil", id)
		}
	}
	if ByID("E99") != nil {
		t.Error("ByID(E99) should be nil")
	}
}

func TestX1Shape(t *testing.T) {
	res, err := X1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mixed workload", "tampers detected", "false claims exposed", "0%"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("X1 missing %q", want)
		}
	}
}

func TestX2Shape(t *testing.T) {
	res, err := X2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"whole-object", "chunked (16 KiB)", "chunked (4 KiB)", "chunks [0]"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("X2 missing %q", want)
		}
	}
}
