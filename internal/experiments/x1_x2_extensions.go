package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/bigobject"
	"repro/internal/deploy"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/workload"
)

// X1 is an extension experiment beyond the paper's figures: a
// population-level workload study. The paper argues its guarantees per
// scenario; X1 runs mixed workloads at increasing incident rates and
// checks the guarantees hold as rates, not anecdotes — detection,
// attribution and blackmail exposure must all be 100%.
func X1() (Result, error) {
	var b strings.Builder
	tb := newExtTable()
	for i, tc := range []struct {
		tamper, claim float64
	}{
		{0, 0},
		{0.1, 0.1},
		{0.3, 0.2},
		{0.6, 0.3},
	} {
		s, err := workload.Run(workload.Params{
			Objects:        30,
			MinSize:        64,
			MaxSize:        512,
			TamperRate:     tc.tamper,
			FalseClaimRate: tc.claim,
			Seed:           int64(100 + i),
		})
		if err != nil {
			return Result{}, err
		}
		tb.AddRow(
			fmt.Sprintf("%.0f%% / %.0f%%", tc.tamper*100, tc.claim*100),
			s.Uploads,
			fmt.Sprintf("%d/%d", s.TampersDetected, s.TampersInjected),
			fmt.Sprintf("%d/%d", s.TampersAttributed, s.TampersInjected),
			fmt.Sprintf("%d/%d", s.FalseClaimsExposed, s.FalseClaims),
			s.TTPMsgs,
		)
		if s.TampersDetected != s.TampersInjected || s.TampersAttributed != s.TampersInjected ||
			s.FalseClaimsExposed != s.FalseClaims {
			return Result{}, fmt.Errorf("experiments: X1 guarantee broken at rates %+v: %+v", tc, s)
		}
	}
	b.WriteString(tb.String())
	b.WriteString(`
Reading: detection, attribution and blackmail exposure stay at 100%
regardless of the incident rate, and the TTP stays idle (0 messages) —
the guarantees are properties of the evidence, not of luck.
`)
	return Result{
		ID:    "X1",
		Title: "extension — population workload study: incident rates vs guarantees",
		Text:  b.String(),
	}, nil
}

func newExtTable() *metrics.Table {
	return metrics.NewTable("X1 — mixed workload (30 objects per row)",
		"tamper/claim rate", "objects", "tampers detected", "tampers attributed", "false claims exposed", "ttp msgs")
}

// X2 ablates the chunked-object extension: whole-object evidence
// detects tampering but cannot localize it; Merkle-manifest chunking
// names the exact chunks, at the cost of per-chunk transactions.
func X2() (Result, error) {
	var b strings.Builder
	tb := metrics.NewTable("X2 — whole-object vs chunked detection (64 KiB object, 1 chunk tampered)",
		"mode", "upload txns", "tamper detected", "localized to", "recoverable bytes")

	const size = 64 << 10
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 31)
	}

	// Whole-object mode.
	{
		d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 10 * time.Second})
		if err != nil {
			return Result{}, err
		}
		conn, err := d.DialProvider()
		if err != nil {
			d.Close()
			return Result{}, err
		}
		if _, err := d.Client.Upload(context.Background(), conn, "x2-whole", "obj", data); err != nil {
			conn.Close()
			d.Close()
			return Result{}, err
		}
		tam := d.Store.(storage.Tamperer)
		tam.Tamper("obj", true, func(b []byte) []byte { b[1000] ^= 0xFF; return b })
		_, derr := d.Client.Download(context.Background(), conn, "x2-whole-dl", "obj", "x2-whole")
		detected := derr != nil
		tb.AddRow("whole-object", 1, detected, "entire object", 0)
		conn.Close()
		d.Close()
	}

	// Chunked modes at two chunk sizes.
	for _, chunkSize := range []int{16 << 10, 4 << 10} {
		d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 10 * time.Second})
		if err != nil {
			return Result{}, err
		}
		conn, err := d.DialProvider()
		if err != nil {
			d.Close()
			return Result{}, err
		}
		up, err := bigobject.Upload(context.Background(), d.Client, conn, "x2", "obj", data, chunkSize)
		if err != nil {
			conn.Close()
			d.Close()
			return Result{}, err
		}
		tam := d.Store.(storage.Tamperer)
		tam.Tamper(bigobject.ChunkKey("obj", 0), true, func(b []byte) []byte { b[10] ^= 0xFF; return b })
		down, derr := bigobject.Download(context.Background(), d.Client, conn, "x2-dl", "obj", up.ManifestTxn)
		detected := errors.Is(derr, bigobject.ErrTampered)
		recovered := size - chunkSize
		tb.AddRow(
			fmt.Sprintf("chunked (%d KiB)", chunkSize>>10),
			1+len(up.ChunkTxns),
			detected,
			fmt.Sprintf("chunks %v", down.BadChunks),
			recovered,
		)
		conn.Close()
		d.Close()
	}
	b.WriteString(tb.String())
	b.WriteString(`
Reading: whole-object evidence answers "was it tampered?" but loses the
entire object; chunking answers "WHICH bytes?", recovering everything
outside the bad chunks, at the cost of one TPNR transaction per chunk.
Smaller chunks localize tighter and recover more, but multiply the
fixed RSA cost — the operator's knob.
`)
	return Result{
		ID:    "X2",
		Title: "extension — Merkle-chunked objects: tamper localization vs transaction cost",
		Text:  b.String(),
	}, nil
}
