package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/deploy"
	"repro/internal/metrics"
	"repro/internal/pki"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/traditional"
)

// E8 quantifies the §4.4 claim: "in the Normal and Abort models, it
// takes Alice and Bob merely two steps without TTP to exchange
// messages and non-repudiation evidence directly. In contrast, the
// same operation takes four steps in the traditional non-repudiation
// protocol."
//
// Three tables: (1) per-transaction message/crypto cost for TPNR vs
// the Zhou–Gollmann-style baseline, (2) latency under simulated RTTs,
// and (3) the crossover analysis — how TPNR's advantage erodes as the
// fraction of transactions needing Resolve grows.
func E8() (Result, error) {
	var b strings.Builder
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i)
	}

	// --- Table 1: per-transaction cost. ---
	tpnrClient, tpnrTTP, err := runTPNROnce(payload)
	if err != nil {
		return Result{}, err
	}
	tradClient, tradTTP, err := runTraditionalOnce(payload)
	if err != nil {
		return Result{}, err
	}
	cost := metrics.NewTable("§4.4 — per-transaction cost (64 KiB upload)",
		"protocol", "main steps", "client msgs sent", "ttp msgs", "sign ops (client)", "verify ops (client)")
	cost.AddRow("TPNR (Normal)", 2,
		tpnrClient.Get(metrics.MsgsSent), tpnrClient.Get(metrics.TTPMsgs)+tpnrTTP.Get(metrics.MsgsRecv),
		tpnrClient.Get(metrics.SignOps), tpnrClient.Get(metrics.VerifyOps))
	cost.AddRow("traditional NR (ZG-style)", 4,
		tradClient.Get(metrics.MsgsSent), tradClient.Get(metrics.TTPMsgs)+tradTTP.Get(metrics.TTPMsgs),
		tradClient.Get(metrics.SignOps), tradClient.Get(metrics.VerifyOps))
	b.WriteString(cost.String())
	b.WriteString("\n")

	// --- Table 2: latency vs simulated RTT. Message count dominates
	// when RTT does: TPNR pays 1 RTT, traditional pays 3 (commit,
	// submit, fetch — B's fetch overlaps). We compute from counted
	// round trips rather than sleeping.
	lat := metrics.NewTable("latency model — round trips × RTT",
		"RTT", "TPNR (1 round trip)", "traditional (3 round trips)", "ratio")
	for _, rtt := range []time.Duration{time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond, 200 * time.Millisecond} {
		tp := 1 * rtt
		tr := 3 * rtt
		lat.AddRow(rtt, tp, tr, fmt.Sprintf("%.1f×", float64(tr)/float64(tp)))
	}
	b.WriteString(lat.String())
	b.WriteString("\n")

	// --- Table 3: crossover vs Resolve rate. A Resolve costs Alice→TTP,
	// TTP→Bob, Bob→TTP, TTP→Alice = 4 extra messages. Traditional
	// always pays its TTP messages. Expected messages per transaction:
	// TPNR: 2 + r·4; traditional: 6 (4 steps + A's fetch round trip).
	cross := metrics.NewTable("crossover — expected messages vs Resolve rate",
		"resolve rate", "TPNR expected msgs", "traditional msgs", "TPNR cheaper")
	for _, r := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0} {
		tp := 2 + r*4
		tr := 6.0
		cross.AddRow(fmt.Sprintf("%.0f%%", r*100), tp, tr, tp < tr)
	}
	b.WriteString(cross.String())
	b.WriteString(`
Reading: TPNR completes in 2 messages with zero TTP involvement in the
common case; the traditional protocol pays 4 main steps plus mandatory
TTP work on every transaction. Even at a 100% Resolve rate TPNR's
message count (6) only MATCHES the traditional baseline — it never
exceeds it — confirming the off-line-TTP design choice for clouds
where most transactions complete honestly.
`)

	return Result{
		ID:    "E8",
		Title: "§4.4 — TPNR vs traditional four-step NR: steps, messages, TTP load, latency",
		Text:  b.String(),
	}, nil
}

// runTPNROnce executes one Normal-mode upload and returns client and
// TTP counters.
func runTPNROnce(payload []byte) (*metrics.Counters, *metrics.Counters, error) {
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 10 * time.Second})
	if err != nil {
		return nil, nil, err
	}
	defer d.Close()
	conn, err := d.DialProvider()
	if err != nil {
		return nil, nil, err
	}
	defer conn.Close()
	if _, err := d.Client.Upload(context.Background(), conn, session.NewTransactionID(), "bench/obj", payload); err != nil {
		return nil, nil, err
	}
	return d.ClientCounters, d.TTPCounters, nil
}

// runTraditionalOnce executes one Zhou–Gollmann-style run and returns
// client and TTP counters.
func runTraditionalOnce(payload []byte) (*metrics.Counters, *metrics.Counters, error) {
	ca := pki.NewAuthority("e8-ca", cryptoutil.InsecureTestKey(96))
	now := time.Now()
	mk := func(name string, slot int) (*pki.Identity, error) {
		return pki.NewIdentity(ca, name, cryptoutil.InsecureTestKey(slot), now.Add(-time.Hour), now.Add(24*time.Hour))
	}
	a, err := mk("alice", 97)
	if err != nil {
		return nil, nil, err
	}
	bID, err := mk("bob", 98)
	if err != nil {
		return nil, nil, err
	}
	tID, err := mk("ttp", 99)
	if err != nil {
		return nil, nil, err
	}
	var cCtr, tCtr metrics.Counters
	client := traditional.NewClient(a, ca.Lookup, &cCtr)
	provider := traditional.NewProvider(bID, ca.Lookup, storage.NewMem(nil), &metrics.Counters{})
	ttp := traditional.NewTTP(tID, ca.Lookup, &tCtr)
	if _, err := client.Upload(context.Background(), "L-e8", "bench/obj", payload, provider, ttp); err != nil {
		return nil, nil, err
	}
	return &cCtr, &tCtr, nil
}
