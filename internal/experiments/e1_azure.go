package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cloudsim/azuresim"
	"repro/internal/cryptoutil"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// e1Date pins the transcript to the paper's own example date
// ("Sun, 13 Sept 2009", Table 1).
var e1Date = time.Date(2009, 9, 13, 17, 30, 25, 0, time.UTC)

// E1 regenerates Table 1: a PUT and a GET block request against the
// Azure simulator, byte-for-byte in the REST shape the paper shows,
// plus an authorization validation table proving the SharedKey check
// behaves as described.
func E1() (Result, error) {
	svc := azuresim.New(storage.NewMem(nil), func() time.Time { return e1Date })
	key, err := svc.CreateAccount("jerry")
	if err != nil {
		return Result{}, err
	}
	client := azuresim.NewClient(svc, "jerry", key)

	var b strings.Builder
	body := []byte("block #1 of pics")

	putReq, putResp := client.PutBlock("/pics/block?comp=block&blockid=blockid1&timeout=30", body)
	fmt.Fprintf(&b, "--- PUT block (Table 1, upper half) ---\n%s=> status %d, recorded Content-MD5 %s\n\n",
		putReq.Render(), putResp.Status, putResp.ContentMD5)

	getReq, getResp := client.GetBlock("/pics/block?comp=block&blockid=blockid1&timeout=30")
	fmt.Fprintf(&b, "--- GET block (Table 1, lower half) ---\n%s=> status %d, returned Content-MD5 %s (%d bytes)\n\n",
		getReq.Render(), getResp.Status, getResp.ContentMD5, len(getResp.Body))

	// Validation rows: what the SharedKey authorization accepts and
	// rejects.
	tb := metrics.NewTable("SharedKey authorization validation", "request variant", "status", "accepted")
	addRow := func(name string, resp *azuresim.Response) {
		tb.AddRow(name, resp.Status, resp.Status < 300)
	}
	addRow("correctly signed PUT", putResp)
	addRow("correctly signed GET", getResp)

	wrongKey := azuresim.NewClient(svc, "jerry", []byte("wrong key wrong key wrong key!!!"))
	_, r := wrongKey.PutBlock("/pics/block", body)
	addRow("PUT signed with wrong account key", r)

	tampered := &azuresim.Request{Method: "PUT", Resource: "/pics/block", Account: "jerry", Date: e1Date,
		ContentMD5: cryptoutil.Sum(cryptoutil.MD5, body).Base64(), Body: body}
	tampered.Sign(key)
	tampered.Resource = "/pics/OTHER" // modified after signing
	addRow("PUT with resource altered after signing", svc.Handle(tampered))

	badMD5 := &azuresim.Request{Method: "PUT", Resource: "/pics/bad", Account: "jerry", Date: e1Date,
		ContentMD5: cryptoutil.Sum(cryptoutil.MD5, []byte("other")).Base64(), Body: body}
	badMD5.Sign(key)
	addRow("PUT whose Content-MD5 does not match the body", svc.Handle(badMD5))

	stale := &azuresim.Request{Method: "GET", Resource: "/pics/block", Account: "jerry", Date: e1Date.Add(-time.Hour)}
	stale.Sign(key)
	addRow("GET dated one hour in the past", svc.Handle(stale))

	b.WriteString(tb.String())
	return Result{
		ID:    "E1",
		Title: "Table 1 — Azure REST PUT/GET with SharedKey HMAC-SHA256 and Content-MD5",
		Text:  b.String(),
	}, nil
}
