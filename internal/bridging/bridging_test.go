package bridging

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/pki"
	"repro/internal/storage"
)

var allSolutions = []Solution{S1NoTACNoSKS, S2SKSOnly, S3TACOnly, S4TACAndSKS}

func newBridge(t *testing.T, sol Solution) *Bridge {
	t.Helper()
	ca := pki.NewAuthority("bridge-ca", cryptoutil.InsecureTestKey(60))
	now := time.Now()
	user, err := pki.NewIdentity(ca, "user", cryptoutil.InsecureTestKey(61), now.Add(-time.Hour), now.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	provider, err := pki.NewIdentity(ca, "provider", cryptoutil.InsecureTestKey(62), now.Add(-time.Hour), now.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	tac, err := pki.NewIdentity(ca, "tac", cryptoutil.InsecureTestKey(63), now.Add(-time.Hour), now.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(sol, user, provider, tac, ca.Lookup, storage.NewMem(nil))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSolutionMetadata(t *testing.T) {
	if S1NoTACNoSKS.UsesTAC() || S1NoTACNoSKS.UsesSKS() {
		t.Error("S1 should use neither")
	}
	if S2SKSOnly.UsesTAC() || !S2SKSOnly.UsesSKS() {
		t.Error("S2 should use SKS only")
	}
	if !S3TACOnly.UsesTAC() || S3TACOnly.UsesSKS() {
		t.Error("S3 should use TAC only")
	}
	if !S4TACAndSKS.UsesTAC() || !S4TACAndSKS.UsesSKS() {
		t.Error("S4 should use both")
	}
	seen := map[string]bool{}
	for _, s := range allSolutions {
		if seen[s.String()] {
			t.Errorf("duplicate name %q", s)
		}
		seen[s.String()] = true
	}
}

func TestTACRequired(t *testing.T) {
	ca := pki.NewAuthority("x", cryptoutil.InsecureTestKey(60))
	now := time.Now()
	user, _ := pki.NewIdentity(ca, "u", cryptoutil.InsecureTestKey(61), now, now.Add(time.Hour))
	prov, _ := pki.NewIdentity(ca, "p", cryptoutil.InsecureTestKey(62), now, now.Add(time.Hour))
	if _, err := New(S3TACOnly, user, prov, nil, ca.Lookup, storage.NewMem(nil)); err == nil {
		t.Fatal("S3 without TAC accepted")
	}
	if _, err := New(S1NoTACNoSKS, user, prov, nil, ca.Lookup, storage.NewMem(nil)); err != nil {
		t.Fatalf("S1 without TAC rejected: %v", err)
	}
}

func TestUploadDownloadCleanAllSolutions(t *testing.T) {
	data := []byte("backup archive v1")
	for _, sol := range allSolutions {
		t.Run(sol.String(), func(t *testing.T) {
			b := newBridge(t, sol)
			if err := b.Upload(context.Background(), "backup", data); err != nil {
				t.Fatal(err)
			}
			got, ok, err := b.Download(context.Background(), "backup")
			if err != nil {
				t.Fatal(err)
			}
			if !ok || !bytes.Equal(got, data) {
				t.Fatalf("download: ok=%v data=%q", ok, got)
			}
		})
	}
}

// TestDisputeProviderTamper: the provider tampers (fixing the platform
// digest); every solution's dispute must recover the agreed MD5 and
// prove the user right.
func TestDisputeProviderTamper(t *testing.T) {
	for _, sol := range allSolutions {
		t.Run(sol.String(), func(t *testing.T) {
			b := newBridge(t, sol)
			if err := b.Upload(context.Background(), "doc", []byte("original content")); err != nil {
				t.Fatal(err)
			}
			tam := b.Store().(storage.Tamperer)
			if err := tam.Tamper("doc", true, func([]byte) []byte { return []byte("tampered content") }); err != nil {
				t.Fatal(err)
			}
			// The per-session download check passes — the gap.
			_, ok, err := b.Download(context.Background(), "doc")
			if err != nil || !ok {
				t.Fatalf("download check should pass after digest-fixing tamper: ok=%v err=%v", ok, err)
			}
			// The dispute catches it.
			out, err := b.Dispute(context.Background(), "doc")
			if err != nil {
				t.Fatal(err)
			}
			if !out.AgreedMD5Recovered {
				t.Fatalf("agreed MD5 not recovered: %s", out.Explanation)
			}
			if out.DataMatches || !out.UserProven || out.ProviderProven {
				t.Fatalf("wrong outcome: %+v", out)
			}
		})
	}
}

// TestDisputeBlackmail: the user falsely claims tampering; every
// solution proves the provider innocent.
func TestDisputeBlackmail(t *testing.T) {
	for _, sol := range allSolutions {
		t.Run(sol.String(), func(t *testing.T) {
			b := newBridge(t, sol)
			if err := b.Upload(context.Background(), "doc", []byte("intact content")); err != nil {
				t.Fatal(err)
			}
			out, err := b.Dispute(context.Background(), "doc")
			if err != nil {
				t.Fatal(err)
			}
			if !out.AgreedMD5Recovered || !out.DataMatches || !out.ProviderProven || out.UserProven {
				t.Fatalf("wrong outcome: %+v", out)
			}
		})
	}
}

// TestS2CorruptedShareBreaksDispute shows the S2 weakness the paper's
// S4 fixes: without a TAC, a corrupted share makes the agreed MD5
// unrecoverable.
func TestS2CorruptedShareBreaksDispute(t *testing.T) {
	b := newBridge(t, S2SKSOnly)
	if err := b.Upload(context.Background(), "doc", []byte("content")); err != nil {
		t.Fatal(err)
	}
	if err := b.CorruptUserShare("doc"); err != nil {
		t.Fatal(err)
	}
	out, err := b.Dispute(context.Background(), "doc")
	if err != nil {
		t.Fatal(err)
	}
	if out.AgreedMD5Recovered {
		t.Fatal("S2 dispute should fail with a corrupted share")
	}
}

// TestS4SurvivesCorruptedShare: with the TAC holding a third share,
// the dispute still recovers the agreed MD5.
func TestS4SurvivesCorruptedShare(t *testing.T) {
	b := newBridge(t, S4TACAndSKS)
	if err := b.Upload(context.Background(), "doc", []byte("content")); err != nil {
		t.Fatal(err)
	}
	if err := b.CorruptUserShare("doc"); err != nil {
		t.Fatal(err)
	}
	out, err := b.Dispute(context.Background(), "doc")
	if err != nil {
		t.Fatal(err)
	}
	if !out.AgreedMD5Recovered {
		t.Fatalf("S4 dispute failed despite TAC share: %s", out.Explanation)
	}
	if !out.DataMatches || !out.ProviderProven {
		t.Fatalf("wrong outcome: %+v", out)
	}
}

func TestUploadChecksumRejected(t *testing.T) {
	// A corrupted-in-transit upload is rejected by the provider's MD5
	// check in every solution (the paper's step 2).
	b := newBridge(t, S1NoTACNoSKS)
	// Simulate by direct Put with wrong digest — the bridge's own
	// Upload always computes the true MD5, so exercise the store check.
	wrong := cryptoutil.Sum(cryptoutil.MD5, []byte("other"))
	if _, err := b.Store().Put("k", []byte("data"), wrong); !errors.Is(err, storage.ErrChecksum) {
		t.Fatalf("err = %v, want storage.ErrChecksum", err)
	}
}

func TestDisputeUnknownObject(t *testing.T) {
	b := newBridge(t, S1NoTACNoSKS)
	if _, err := b.Dispute(context.Background(), "ghost"); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("err = %v, want ErrNoRecord", err)
	}
}

// TestMessageCounts pins the E6 message-cost comparison: S1 is the
// cheapest (2 messages), S4 the dearest (5).
func TestMessageCounts(t *testing.T) {
	want := map[Solution]int{
		S1NoTACNoSKS: 2,
		S2SKSOnly:    3,
		S3TACOnly:    3,
		S4TACAndSKS:  5,
	}
	for _, sol := range allSolutions {
		b := newBridge(t, sol)
		if err := b.Upload(context.Background(), "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if got := b.Msgs.Upload; got != want[sol] {
			t.Errorf("%v: upload messages = %d, want %d", sol, got, want[sol])
		}
	}
}

func TestS3DisputeUsesTACCopies(t *testing.T) {
	b := newBridge(t, S3TACOnly)
	if err := b.Upload(context.Background(), "doc", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Even if the parties' own records were lost, the TAC's copies
	// decide the dispute.
	delete(b.records, "doc")
	b.records["doc"] = &uploadRecord{key: "doc", agreedMD5: cryptoutil.Sum(cryptoutil.MD5, []byte("v"))}
	out, err := b.Dispute(context.Background(), "doc")
	if err != nil {
		t.Fatal(err)
	}
	if !out.AgreedMD5Recovered || !out.DataMatches {
		t.Fatalf("TAC-backed dispute failed: %+v", out)
	}
}
