// Package bridging implements the four preliminary solutions of paper
// §3 for bridging the missing integrity link between uploading and
// downloading sessions. The solutions are indexed by two booleans —
// whether a Third Authority Certified (TAC) participates, and whether
// the Secret Key Sharing technique (SKS) is used:
//
//	S1 (§3.1) neither TAC nor SKS:  exchange MD5 signatures (MSU/MSP)
//	S2 (§3.2) SKS without TAC:      share the agreed MD5 via secret sharing
//	S3 (§3.3) TAC without SKS:      MSU and MSP deposited at the TAC
//	S4 (§3.4) both TAC and SKS:     TAC verifies the MD5s and distributes shares
//
// Each solution provides an uploading session, a downloading session
// and a dispute procedure; experiment E6 compares their message costs
// and dispute power. The full TPNR protocol (internal/core) supersedes
// all four; this package exists because the paper proposes and
// compares them.
package bridging

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/pki"
	"repro/internal/sks"
	"repro/internal/storage"
)

// Solution identifies one of the four §3 schemes.
type Solution int

// The four solutions.
const (
	S1NoTACNoSKS Solution = iota + 1
	S2SKSOnly
	S3TACOnly
	S4TACAndSKS
)

// String names the solution as the paper does.
func (s Solution) String() string {
	switch s {
	case S1NoTACNoSKS:
		return "S1 (neither TAC nor SKS)"
	case S2SKSOnly:
		return "S2 (SKS without TAC)"
	case S3TACOnly:
		return "S3 (TAC without SKS)"
	case S4TACAndSKS:
		return "S4 (TAC and SKS)"
	default:
		return fmt.Sprintf("solution(%d)", int(s))
	}
}

// UsesTAC reports whether the solution involves the third authority.
func (s Solution) UsesTAC() bool { return s == S3TACOnly || s == S4TACAndSKS }

// UsesSKS reports whether the solution uses secret sharing.
func (s Solution) UsesSKS() bool { return s == S2SKSOnly || s == S4TACAndSKS }

// Errors.
var (
	ErrChecksum   = errors.New("bridging: MD5 mismatch")
	ErrNoRecord   = errors.New("bridging: no upload record for object")
	ErrBadAuth    = errors.New("bridging: request authentication failed")
	ErrTACRefused = errors.New("bridging: TAC verification failed")
)

// signedMD5 is an MSU or MSP: a party's signature over an object's MD5.
type signedMD5 struct {
	Signer string
	MD5    cryptoutil.Digest
	Sig    []byte
}

func signMD5(id *pki.Identity, key string, md5 cryptoutil.Digest) (*signedMD5, error) {
	sig, err := id.Key.Signer().Sign(md5SignBytes(key, md5))
	if err != nil {
		return nil, err
	}
	return &signedMD5{Signer: id.Name, MD5: md5.Clone(), Sig: sig}, nil
}

func md5SignBytes(key string, md5 cryptoutil.Digest) []byte {
	return []byte("bridging-md5-v1\x00" + key + "\x00" + md5.String())
}

// verifySignedMD5 checks a signed MD5 against the signer's certificate.
func verifySignedMD5(dir func(string) (*pki.Certificate, error), sm *signedMD5, key string) error {
	if sm == nil {
		return fmt.Errorf("bridging: missing signed MD5")
	}
	cert, err := dir(sm.Signer)
	if err != nil {
		return err
	}
	pub, err := cert.Key()
	if err != nil {
		return err
	}
	return pub.Verify(md5SignBytes(key, sm.MD5), sm.Sig)
}

// uploadRecord is everything retained per object by the scheme's
// participants after a completed upload.
type uploadRecord struct {
	key       string
	agreedMD5 cryptoutil.Digest

	// S1/S3: cross-held signatures.
	msu *signedMD5 // user's signature (held by provider, and TAC in S3)
	msp *signedMD5 // provider's signature (held by user, and TAC in S3)

	// S2/S4: secret shares of the agreed MD5 bytes.
	userShare, providerShare, tacShare *sks.Share
}

// Bridge runs one solution between a user, a provider (with its blob
// store) and optionally a TAC.
type Bridge struct {
	Solution Solution
	User     *pki.Identity
	Provider *pki.Identity
	TAC      *pki.Identity
	Dir      func(string) (*pki.Certificate, error)

	store storage.Store

	// records indexes completed uploads by object key. In S3/S4 the
	// tacVault holds the TAC's copies.
	records  map[string]*uploadRecord
	tacVault map[string]*uploadRecord

	// Msgs counts protocol messages per phase for experiment E6.
	Msgs struct {
		Upload, Download, Dispute int
	}
}

// New creates a bridge over the provider's store. TAC may be nil for
// S1/S2.
func New(sol Solution, user, provider, tac *pki.Identity, dir func(string) (*pki.Certificate, error), store storage.Store) (*Bridge, error) {
	if sol.UsesTAC() && tac == nil {
		return nil, fmt.Errorf("bridging: %v requires a TAC identity", sol)
	}
	return &Bridge{
		Solution: sol,
		User:     user,
		Provider: provider,
		TAC:      tac,
		Dir:      dir,
		store:    store,
		records:  make(map[string]*uploadRecord),
		tacVault: make(map[string]*uploadRecord),
	}, nil
}

// Upload runs the solution's uploading session for one object.
func (b *Bridge) Upload(ctx context.Context, key string, data []byte) error {
	if err := core.CheckContext(ctx); err != nil {
		return err
	}
	md5 := cryptoutil.Sum(cryptoutil.MD5, data)
	rec := &uploadRecord{key: key, agreedMD5: md5.Clone()}

	switch b.Solution {
	case S1NoTACNoSKS, S3TACOnly:
		// 1: user sends data + MD5 + MSU.
		msu, err := signMD5(b.User, key, md5)
		if err != nil {
			return err
		}
		b.Msgs.Upload++
		// 2: provider verifies the MD5 against the data...
		if _, err := b.store.Put(key, data, md5); err != nil {
			return fmt.Errorf("%w: %v", ErrChecksum, err)
		}
		if err := verifySignedMD5(b.Dir, msu, key); err != nil {
			return fmt.Errorf("bridging: provider rejects MSU: %w", err)
		}
		// ...and replies with MD5 + MSP.
		msp, err := signMD5(b.Provider, key, md5)
		if err != nil {
			return err
		}
		b.Msgs.Upload++
		rec.msu, rec.msp = msu, msp
		if b.Solution == S3TACOnly {
			// 3: MSU and MSP are sent to the TAC.
			b.Msgs.Upload++
			b.tacVault[key] = &uploadRecord{key: key, agreedMD5: md5.Clone(), msu: msu, msp: msp}
		}

	case S2SKSOnly:
		// 1: user sends data + MD5; 2: provider verifies and echoes MD5.
		b.Msgs.Upload++
		if _, err := b.store.Put(key, data, md5); err != nil {
			return fmt.Errorf("%w: %v", ErrChecksum, err)
		}
		b.Msgs.Upload++
		// 3: both share the MD5 with SKS (2-of-2).
		shares, err := sks.Split(md5.Sum, 2, 2)
		if err != nil {
			return err
		}
		b.Msgs.Upload++ // the share exchange
		rec.userShare, rec.providerShare = &shares[0], &shares[1]

	case S4TACAndSKS:
		// 1: user sends data + MD5; 2: provider verifies.
		b.Msgs.Upload++
		if _, err := b.store.Put(key, data, md5); err != nil {
			return fmt.Errorf("%w: %v", ErrChecksum, err)
		}
		// 3: both send their MD5 to the TAC (2 messages).
		b.Msgs.Upload += 2
		userMD5, providerMD5 := md5, md5 // honest run: both report the same
		if !userMD5.Equal(providerMD5) {
			return ErrTACRefused
		}
		// 4: TAC verifies the match and distributes shares by SKS
		// (2-of-3: user, provider, TAC).
		shares, err := sks.Split(md5.Sum, 3, 2)
		if err != nil {
			return err
		}
		b.Msgs.Upload += 2 // TAC → user, TAC → provider
		rec.userShare, rec.providerShare, rec.tacShare = &shares[0], &shares[1], &shares[2]
		b.tacVault[key] = &uploadRecord{key: key, agreedMD5: md5.Clone(), tacShare: &shares[2]}

	default:
		return fmt.Errorf("bridging: unknown solution %v", b.Solution)
	}
	b.records[key] = rec
	return nil
}

// Download runs the downloading session: request + authenticated
// response; the user verifies the transfer MD5. The returned bool
// reports whether the per-session MD5 check passed (it says nothing
// about upload-to-download integrity — that is the dispute's job).
func (b *Bridge) Download(ctx context.Context, key string) ([]byte, bool, error) {
	if err := core.CheckContext(ctx); err != nil {
		return nil, false, err
	}
	b.Msgs.Download++ // request with authentication code
	obj, err := b.store.Get(key)
	if err != nil {
		return nil, false, err
	}
	b.Msgs.Download++ // data + MD5 (+ MSP in S1)
	// The provider sends the stored MD5; the user verifies the data
	// hashes to it — a pure transfer check.
	ok := obj.ComputedMD5().Equal(obj.StoredMD5)
	return obj.Data, ok, nil
}

// DisputeOutcome reports what a dispute over an object established.
type DisputeOutcome struct {
	Solution Solution
	// AgreedMD5Recovered is true when the procedure could establish the
	// original agreed digest.
	AgreedMD5Recovered bool
	AgreedMD5          cryptoutil.Digest
	// DataMatches reports whether the provider's current data matches
	// the agreed digest (meaningful only when recovered).
	DataMatches bool
	// UserProven / ProviderProven: can each side prove its innocence?
	// After recovery: data matches → provider proven (user's tamper
	// claim fails); data differs → user proven (provider is at fault).
	UserProven, ProviderProven bool
	Explanation                string
}

// Dispute runs the solution's dispute procedure for an object,
// given the data the provider currently serves.
func (b *Bridge) Dispute(ctx context.Context, key string) (*DisputeOutcome, error) {
	if err := core.CheckContext(ctx); err != nil {
		return nil, err
	}
	rec, ok := b.records[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoRecord, key)
	}
	out := &DisputeOutcome{Solution: b.Solution}

	// Step 1: recover the agreed MD5 per the solution's mechanism.
	switch b.Solution {
	case S1NoTACNoSKS:
		// Each side presents the opposite side's signature.
		b.Msgs.Dispute += 2
		if err := verifySignedMD5(b.Dir, rec.msp, key); err != nil {
			out.Explanation = "user's copy of MSP does not verify: " + err.Error()
			return out, nil
		}
		if err := verifySignedMD5(b.Dir, rec.msu, key); err != nil {
			out.Explanation = "provider's copy of MSU does not verify: " + err.Error()
			return out, nil
		}
		if !rec.msp.MD5.Equal(rec.msu.MD5) {
			out.Explanation = "MSU and MSP disagree on the MD5; no agreement"
			return out, nil
		}
		out.AgreedMD5 = rec.msp.MD5.Clone()

	case S2SKSOnly:
		// Both shares recombine to the agreed MD5.
		b.Msgs.Dispute += 2
		sum, err := sks.Reconstruct([]sks.Share{*rec.userShare, *rec.providerShare})
		if err != nil {
			out.Explanation = "share reconstruction failed: " + err.Error()
			return out, nil
		}
		out.AgreedMD5 = cryptoutil.Digest{Alg: cryptoutil.MD5, Sum: sum}

	case S3TACOnly:
		// Fetch MSU and MSP from the TAC.
		vault, ok := b.tacVault[key]
		if !ok {
			out.Explanation = "TAC holds no record for the object"
			return out, nil
		}
		b.Msgs.Dispute += 2 // query + response
		if err := verifySignedMD5(b.Dir, vault.msu, key); err != nil {
			out.Explanation = "TAC's MSU does not verify: " + err.Error()
			return out, nil
		}
		if err := verifySignedMD5(b.Dir, vault.msp, key); err != nil {
			out.Explanation = "TAC's MSP does not verify: " + err.Error()
			return out, nil
		}
		if !vault.msu.MD5.Equal(vault.msp.MD5) {
			out.Explanation = "TAC's MSU and MSP disagree"
			return out, nil
		}
		out.AgreedMD5 = vault.msu.MD5.Clone()

	case S4TACAndSKS:
		// Any two of the three shares recombine; parties check shared
		// MD5 together, escalating to the TAC's share if one party
		// withholds or corrupts its own.
		b.Msgs.Dispute += 2
		sum, err := sks.Reconstruct([]sks.Share{*rec.userShare, *rec.providerShare})
		if err != nil {
			// Escalate: TAC supplies its share.
			vault, ok := b.tacVault[key]
			if !ok {
				out.Explanation = "reconstruction failed and TAC holds no share"
				return out, nil
			}
			b.Msgs.Dispute += 2
			sum, err = sks.Reconstruct([]sks.Share{*rec.userShare, *vault.tacShare})
			if err != nil {
				sum, err = sks.Reconstruct([]sks.Share{*rec.providerShare, *vault.tacShare})
			}
			if err != nil {
				out.Explanation = "reconstruction failed even with the TAC share: " + err.Error()
				return out, nil
			}
		}
		out.AgreedMD5 = cryptoutil.Digest{Alg: cryptoutil.MD5, Sum: sum}
	}
	out.AgreedMD5Recovered = true

	// Step 2: judge the currently served data against the agreed MD5.
	obj, err := b.store.Get(key)
	if err != nil {
		out.DataMatches = false
	} else {
		out.DataMatches = obj.ComputedMD5().Equal(out.AgreedMD5)
	}
	if out.DataMatches {
		out.ProviderProven = true
		out.Explanation = "served data matches the agreed MD5: provider proves innocence; tamper claim fails"
	} else {
		out.UserProven = true
		out.Explanation = "served data does not match the agreed MD5: user proves innocence; provider at fault"
	}
	return out, nil
}

// CorruptUserShare models a malicious user mangling their own share
// before a dispute (only meaningful for SKS solutions).
func (b *Bridge) CorruptUserShare(key string) error {
	rec, ok := b.records[key]
	if !ok || rec.userShare == nil {
		return fmt.Errorf("%w: %q has no user share", ErrNoRecord, key)
	}
	rec.userShare.Data[0] ^= 0xFF
	return nil
}

// Store exposes the provider's store (for tamper injection in tests
// and experiments).
func (b *Bridge) Store() storage.Store { return b.store }
