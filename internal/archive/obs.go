package archive

import (
	"sync"

	"repro/internal/obs"
)

var (
	archiveAppends = obs.Default().Counter("archive_appends_total")
	// archiveRecovered counts orphan data records re-indexed at Open —
	// each one is a crash that landed between the data and index writes.
	archiveRecovered = obs.Default().Counter("archive_recovered_records_total")
	// archiveHeals counts torn tails truncated at Open (data or index).
	archiveHeals = obs.Default().Counter("archive_heals_total")
	// archiveRebuilds counts full index reconstructions from the data
	// file — the expensive heal, taken only when the index itself lies.
	archiveRebuilds = obs.Default().Counter("archive_index_rebuilds_total")
)

// Open stores are tracked process-wide so the size gauges can be
// callback gauges summed at scrape time.
var (
	storeMu sync.Mutex
	stores  = make(map[*Store]struct{})
)

func trackStore(s *Store)   { storeMu.Lock(); stores[s] = struct{}{}; storeMu.Unlock() }
func untrackStore(s *Store) { storeMu.Lock(); delete(stores, s); storeMu.Unlock() }

func init() {
	r := obs.Default()
	r.GaugeFunc("archive_sessions_total", func() int64 {
		storeMu.Lock()
		defer storeMu.Unlock()
		var total int64
		for s := range stores {
			total += int64(s.Sessions())
		}
		return total
	})
	r.GaugeFunc("archive_bytes_total", func() int64 {
		storeMu.Lock()
		defer storeMu.Unlock()
		var total int64
		for s := range stores {
			total += s.Bytes()
		}
		return total
	})
}
