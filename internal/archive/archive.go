// Package archive is the cold tier under the evidence journal:
// an append-only, indexed, CRC-protected store that checkpoint
// compaction moves terminal sessions' evidence into. The WAL answers
// "what happened since the last snapshot"; the archive answers "show me
// the evidence for a session that completed years ago" — in O(1), off a
// file the hot path never rewrites, so an Arbitrator resolving an old
// dispute (§4.4) neither replays history nor competes with live
// traffic.
//
// On-disk layout: dir/evidence.dat holds the bundles, dir/evidence.idx
// maps transaction → (offset, length). Both files carry an 8-byte magic
// and records framed exactly like WAL segments:
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// The data file is authoritative; the index is derived and
// reconstructible. Append writes data first, index second, fsyncs
// neither (the WAL retains every bundle until the checkpoint that
// follows compaction is durable, so a lost archive suffix is always
// re-compacted) — callers make a batch durable with one Sync. Open
// self-heals every crash shape that ordering can leave: a torn index
// tail is truncated, an index pointing past the data is rebuilt by full
// rescan, data records past the last indexed byte (the crash window
// between the two appends) are re-indexed, and a torn data tail is
// truncated. Re-appending a transaction is last-wins, which makes
// compaction idempotent across crash-replay cycles.
package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faultpoint"
	"repro/internal/wire"
)

// fpAppendPartial fires between the data write and the index write of
// one Append — the crash window that leaves an orphan data record for
// Open to re-index.
var fpAppendPartial = faultpoint.Register("archive.append.partial")

// Errors.
var (
	// ErrNotFound reports a transaction absent from the archive.
	ErrNotFound = errors.New("archive: transaction not archived")
	// ErrCorrupt reports a damaged record the self-heal paths cannot
	// explain as a torn tail.
	ErrCorrupt = errors.New("archive: corrupt record")
	// ErrClosed is returned from operations on a closed store.
	ErrClosed = errors.New("archive: store closed")
)

const (
	dataMagic = "TPNRARC1"
	idxMagic  = "TPNRARX1"
	dataName  = "evidence.dat"
	idxName   = "evidence.idx"

	recHeaderLen = 8 // u32 length + u32 crc

	// MaxBundleSize bounds one archived session's evidence (same order
	// as the WAL's record bound; a bundle is a handful of signed
	// receipts, not bulk data).
	MaxBundleSize = 16 << 20
)

// Item is one piece of evidence in a bundle. Role tags whose evidence
// it is (the owner's journal role byte, passed through opaquely); Blob
// is the encoded evidence itself — the archive does not interpret it.
type Item struct {
	Role uint8
	Blob []byte
}

// Bundle is everything one terminal session leaves behind: its final
// state and every evidence blob either side of the exchange produced.
type Bundle struct {
	Txn   string
	State uint8
	Items []Item
}

type idxEntry struct {
	off    int64 // data-file offset of the framed record
	length int64 // framed record length (header + body)
}

// Store is an append-only archive of terminal-session evidence. Safe
// for concurrent use.
type Store struct {
	mu  sync.Mutex
	dir string

	data *os.File
	idx  *os.File

	dataSize int64
	idxSize  int64

	index map[string]idxEntry

	// err is sticky: an append that cannot be completed (I/O failure, or
	// a crash-simulating panic between the data and index halves)
	// poisons the store rather than leaving callers to guess which half
	// landed. Reads keep working; the next Open heals the files.
	err    error
	closed bool
}

// Open loads (creating if needed) the archive in dir and heals any
// crash wreckage per the package rules.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, index: make(map[string]idxEntry)}
	var err error
	if s.data, s.dataSize, err = openTiered(filepath.Join(dir, dataName), dataMagic); err != nil {
		return nil, err
	}
	if s.idx, s.idxSize, err = openTiered(filepath.Join(dir, idxName), idxMagic); err != nil {
		s.data.Close()
		return nil, err
	}
	if err := s.load(); err != nil {
		s.data.Close()
		s.idx.Close()
		return nil, err
	}
	trackStore(s)
	return s, nil
}

// openTiered opens or creates one archive file, writing the magic on
// creation and validating it otherwise. Returns the file positioned at
// its end and the current size.
func openTiered(path, magic string) (*os.File, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("archive: opening %s: %w", filepath.Base(path), err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("archive: stat %s: %w", filepath.Base(path), err)
	}
	size := fi.Size()
	if size == 0 {
		if _, err := f.Write([]byte(magic)); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("archive: writing %s header: %w", filepath.Base(path), err)
		}
		return f, int64(len(magic)), nil
	}
	hdr := make([]byte, len(magic))
	if _, err := f.ReadAt(hdr, 0); err != nil || string(hdr) != magic {
		// A file torn during creation (shorter than the magic) is
		// indistinguishable from an empty store; rebuild it. Anything
		// else with a wrong magic is not ours to overwrite.
		if size < int64(len(magic)) {
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, 0, fmt.Errorf("archive: truncating torn %s: %w", filepath.Base(path), err)
			}
			if _, err := f.WriteAt([]byte(magic), 0); err != nil {
				f.Close()
				return nil, 0, fmt.Errorf("archive: rewriting %s header: %w", filepath.Base(path), err)
			}
			if _, err := f.Seek(int64(len(magic)), io.SeekStart); err != nil {
				f.Close()
				return nil, 0, fmt.Errorf("archive: seeking %s: %w", filepath.Base(path), err)
			}
			return f, int64(len(magic)), nil
		}
		f.Close()
		return nil, 0, fmt.Errorf("%w: %s: bad file header", ErrCorrupt, filepath.Base(path))
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("archive: seeking %s end: %w", filepath.Base(path), err)
	}
	return f, size, nil
}

// load rebuilds the in-memory index and heals the files. Runs at Open,
// before the store is visible to anyone.
func (s *Store) load() error {
	// Pass 1: the index file. A torn tail (the crash window inside the
	// index write itself) is truncated; entries pointing past the end of
	// the data file mean the data was damaged more than its own torn
	// tail explains — fall through to a full rescan.
	entries, idxEnd, err := scanRecords(s.idx, s.idxSize, idxMagic)
	if err != nil {
		return err
	}
	if idxEnd < s.idxSize {
		if err := s.idx.Truncate(idxEnd); err != nil {
			return fmt.Errorf("archive: truncating torn index tail: %w", err)
		}
		if _, err := s.idx.Seek(idxEnd, io.SeekStart); err != nil {
			return err
		}
		s.idxSize = idxEnd
		archiveHeals.Inc()
	}
	maxEnd := int64(len(dataMagic))
	ordered := make([]struct {
		txn string
		e   idxEntry
	}, 0, len(entries))
	rebuild := false
	for _, rec := range entries {
		d := wire.NewDecoder(rec)
		txn := d.String()
		off := int64(d.U64())
		length := int64(d.U64())
		if err := d.Finish(); err != nil {
			rebuild = true
			break
		}
		if off < int64(len(dataMagic)) || length < recHeaderLen || off+length > s.dataSize {
			rebuild = true
			break
		}
		ordered = append(ordered, struct {
			txn string
			e   idxEntry
		}{txn, idxEntry{off, length}})
		if off+length > maxEnd {
			maxEnd = off + length
		}
	}
	if rebuild {
		return s.rebuildIndex()
	}
	for _, it := range ordered {
		s.index[it.txn] = it.e
	}
	// Pass 2: the data suffix past the last indexed byte — orphan
	// records from the crash window between the data and index writes.
	// Each intact one is re-indexed; a torn tail is truncated.
	return s.indexDataFrom(maxEnd)
}

// rebuildIndex derives the index from scratch by scanning the whole
// data file, then rewrites the index file to match. The data file is
// authoritative, so this is always safe — just O(archive) instead of
// O(index).
func (s *Store) rebuildIndex() error {
	archiveRebuilds.Inc()
	s.index = make(map[string]idxEntry)
	if err := s.idx.Truncate(int64(len(idxMagic))); err != nil {
		return fmt.Errorf("archive: resetting index: %w", err)
	}
	if _, err := s.idx.Seek(int64(len(idxMagic)), io.SeekStart); err != nil {
		return err
	}
	s.idxSize = int64(len(idxMagic))
	return s.indexDataFrom(int64(len(dataMagic)))
}

// indexDataFrom scans data records starting at off, adds each intact
// one to the index (appending index records for them), and truncates a
// torn data tail.
func (s *Store) indexDataFrom(off int64) error {
	if off >= s.dataSize {
		return nil
	}
	buf := make([]byte, s.dataSize-off)
	if _, err := s.data.ReadAt(buf, off); err != nil {
		return fmt.Errorf("archive: reading data suffix: %w", err)
	}
	pos := int64(0)
	for int64(len(buf))-pos >= recHeaderLen {
		length := binary.BigEndian.Uint32(buf[pos:])
		crc := binary.BigEndian.Uint32(buf[pos+4:])
		body := pos + recHeaderLen
		if length > MaxBundleSize || body+int64(length) > int64(len(buf)) ||
			crc32.ChecksumIEEE(buf[body:body+int64(length)]) != crc {
			break // torn tail
		}
		rec := buf[body : body+int64(length)]
		d := wire.NewDecoder(rec)
		txn := d.String()
		if txn == "" || d.Err() != nil {
			break // torn tail that happens to checksum? treat as tear
		}
		e := idxEntry{off + pos, recHeaderLen + int64(length)}
		if err := s.appendIdxLocked(txn, e); err != nil {
			return err
		}
		s.index[txn] = e
		archiveRecovered.Inc()
		pos = body + int64(length)
	}
	if off+pos < s.dataSize {
		if err := s.data.Truncate(off + pos); err != nil {
			return fmt.Errorf("archive: truncating torn data tail: %w", err)
		}
		if _, err := s.data.Seek(off+pos, io.SeekStart); err != nil {
			return err
		}
		s.dataSize = off + pos
		archiveHeals.Inc()
	}
	return nil
}

// scanRecords walks the framed records of one file, returning the
// intact payloads and the offset just past the last intact record (a
// smaller offset than size means a torn tail for the caller to
// truncate).
func scanRecords(f *os.File, size int64, magic string) ([][]byte, int64, error) {
	buf := make([]byte, size-int64(len(magic)))
	if len(buf) > 0 {
		if _, err := f.ReadAt(buf, int64(len(magic))); err != nil {
			return nil, 0, fmt.Errorf("archive: reading records: %w", err)
		}
	}
	var out [][]byte
	pos := int64(0)
	for int64(len(buf))-pos >= recHeaderLen {
		length := binary.BigEndian.Uint32(buf[pos:])
		crc := binary.BigEndian.Uint32(buf[pos+4:])
		body := pos + recHeaderLen
		if length > MaxBundleSize || body+int64(length) > int64(len(buf)) ||
			crc32.ChecksumIEEE(buf[body:body+int64(length)]) != crc {
			break
		}
		out = append(out, buf[body:body+int64(length)])
		pos = body + int64(length)
	}
	return out, int64(len(magic)) + pos, nil
}

// frame wraps body in the shared record framing.
func frame(body []byte) []byte {
	rec := make([]byte, 0, recHeaderLen+len(body))
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(body)))
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(body))
	return append(rec, body...)
}

func encodeBundle(b *Bundle) []byte {
	n := 16 + len(b.Txn)
	for _, it := range b.Items {
		n += 5 + len(it.Blob)
	}
	e := wire.NewEncoder(n)
	e.String(b.Txn)
	e.U8(b.State)
	e.U32(uint32(len(b.Items)))
	for _, it := range b.Items {
		e.U8(it.Role)
		e.Bytes32(it.Blob)
	}
	return e.Bytes()
}

func decodeBundle(rec []byte) (*Bundle, error) {
	d := wire.NewDecoder(rec)
	b := &Bundle{Txn: d.String(), State: d.U8()}
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		b.Items = append(b.Items, Item{Role: d.U8(), Blob: d.Bytes32()})
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: bundle: %v", ErrCorrupt, err)
	}
	return b, nil
}

// appendIdxLocked writes one index record. Callers hold s.mu (or run
// single-threaded inside Open).
func (s *Store) appendIdxLocked(txn string, e idxEntry) error {
	enc := wire.NewEncoder(24 + len(txn))
	enc.String(txn)
	enc.U64(uint64(e.off))
	enc.U64(uint64(e.length))
	rec := frame(enc.Bytes())
	if _, err := s.idx.Write(rec); err != nil {
		return fmt.Errorf("archive: appending index record: %w", err)
	}
	s.idxSize += int64(len(rec))
	return nil
}

// Append archives one terminal session's bundle: data record first,
// index record second, no fsync (see the package comment for why that
// is safe). Re-appending a transaction supersedes the earlier bundle.
// An append that starts but cannot finish poisons the store.
func (s *Store) Append(b *Bundle) error {
	if b.Txn == "" {
		return fmt.Errorf("archive: bundle without transaction id")
	}
	body := encodeBundle(b)
	if len(body) > MaxBundleSize {
		return fmt.Errorf("archive: bundle %s exceeds maximum size", b.Txn)
	}
	rec := frame(body)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.err != nil {
		return s.err
	}
	committed := false
	defer func() {
		// Reached on the panic path too (a crash-simulating faultpoint):
		// a half-done append must poison the store so no later Append
		// interleaves with the missing index half.
		if !committed && s.err == nil {
			s.err = fmt.Errorf("archive: interrupted append of %s", b.Txn)
		}
	}()
	if _, err := s.data.Write(rec); err != nil {
		s.err = fmt.Errorf("archive: appending data record: %w", err)
		committed = true
		return s.err
	}
	e := idxEntry{s.dataSize, int64(len(rec))}
	s.dataSize += int64(len(rec))
	faultpoint.Hit(fpAppendPartial)
	if err := s.appendIdxLocked(b.Txn, e); err != nil {
		s.err = err
		committed = true
		return s.err
	}
	s.index[b.Txn] = e
	committed = true
	archiveAppends.Inc()
	return nil
}

// Sync forces everything appended so far to stable storage: data before
// index, so a crash between the two fsyncs leaves at worst an orphan
// data suffix — exactly the shape Open re-indexes.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.data.Sync(); err != nil {
		s.err = fmt.Errorf("archive: syncing data: %w", err)
		return s.err
	}
	if err := s.idx.Sync(); err != nil {
		s.err = fmt.Errorf("archive: syncing index: %w", err)
		return s.err
	}
	return nil
}

// Get returns the archived bundle for txn — one index lookup, one
// ReadAt, one CRC check; never a scan. The dispute read path for
// compacted sessions.
func (s *Store) Get(txn string) (*Bundle, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	e, ok := s.index[txn]
	f := s.data
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, txn)
	}
	buf := make([]byte, e.length)
	if _, err := f.ReadAt(buf, e.off); err != nil {
		return nil, fmt.Errorf("archive: reading bundle %s: %w", txn, err)
	}
	length := binary.BigEndian.Uint32(buf)
	crc := binary.BigEndian.Uint32(buf[4:])
	if int64(length)+recHeaderLen != e.length {
		return nil, fmt.Errorf("%w: %s: index/record length mismatch", ErrCorrupt, txn)
	}
	body := buf[recHeaderLen:]
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, txn)
	}
	b, err := decodeBundle(body)
	if err != nil {
		return nil, err
	}
	if b.Txn != txn {
		return nil, fmt.Errorf("%w: %s: bundle names %s", ErrCorrupt, txn, b.Txn)
	}
	return b, nil
}

// Has reports whether txn is archived.
func (s *Store) Has(txn string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[txn]
	return ok
}

// Transactions returns every archived transaction id (unordered).
func (s *Store) Transactions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.index))
	for txn := range s.index {
		out = append(out, txn)
	}
	return out
}

// Sessions reports how many distinct transactions are archived.
func (s *Store) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes reports the on-disk footprint (data + index).
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dataSize + s.idxSize
}

// Healthy returns nil while the store accepts appends, or the sticky
// error that poisoned it.
func (s *Store) Healthy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Dir returns the archive directory.
func (s *Store) Dir() string { return s.dir }

// Close syncs and releases the store.
func (s *Store) Close() error {
	// Before s.mu: the gauge callbacks lock the instance set then s.mu.
	untrackStore(s)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.data.Sync()
	if e := s.idx.Sync(); err == nil {
		err = e
	}
	if e := s.data.Close(); err == nil {
		err = e
	}
	if e := s.idx.Close(); err == nil {
		err = e
	}
	return err
}
