package archive

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultpoint"
)

func bundle(txn string, state uint8, blobs ...string) *Bundle {
	b := &Bundle{Txn: txn, State: state}
	for i, s := range blobs {
		b.Items = append(b.Items, Item{Role: uint8(i % 2), Blob: []byte(s)})
	}
	return b
}

func mustAppend(t *testing.T, s *Store, b *Bundle) {
	t.Helper()
	if err := s.Append(b); err != nil {
		t.Fatalf("append %s: %v", b.Txn, err)
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, bundle("txn-1", 3, "nro-blob", "nrr-blob"))
	mustAppend(t, s, bundle("txn-2", 4, "solo"))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Sessions(); got != 2 {
		t.Fatalf("sessions = %d, want 2", got)
	}
	b, err := s2.Get("txn-1")
	if err != nil {
		t.Fatal(err)
	}
	if b.State != 3 || len(b.Items) != 2 || string(b.Items[0].Blob) != "nro-blob" ||
		b.Items[0].Role != 0 || b.Items[1].Role != 1 {
		t.Fatalf("bundle = %+v", b)
	}
	if _, err := s2.Get("txn-9"); err == nil {
		t.Fatal("missing transaction did not error")
	}
	if !s2.Has("txn-2") || s2.Has("txn-9") {
		t.Fatal("Has is wrong")
	}
}

func TestArchiveLastWinsReappend(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, bundle("txn-1", 3, "old"))
	mustAppend(t, s, bundle("txn-1", 4, "new", "newer"))
	if got := s.Sessions(); got != 1 {
		t.Fatalf("sessions = %d, want 1 (re-append must supersede)", got)
	}
	b, err := s.Get("txn-1")
	if err != nil {
		t.Fatal(err)
	}
	if b.State != 4 || len(b.Items) != 2 {
		t.Fatalf("got old bundle back: %+v", b)
	}
	s.Close()

	// Last-wins must survive a reopen (the index file replays in append
	// order).
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	b, err = s2.Get("txn-1")
	if err != nil {
		t.Fatal(err)
	}
	if b.State != 4 {
		t.Fatalf("reopen resurfaced old bundle: %+v", b)
	}
}

func TestArchiveCrashBetweenDataAndIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, bundle("txn-1", 3, "safe"))
	faultpoint.Arm(fpAppendPartial, faultpoint.Kill(fpAppendPartial))
	defer faultpoint.Reset()
	func() {
		defer func() {
			if _, ok := recover().(*faultpoint.Crash); !ok {
				t.Fatal("expected faultpoint crash")
			}
		}()
		s.Append(bundle("txn-2", 4, "orphaned"))
	}()
	faultpoint.Reset()
	// The poisoned store refuses further appends.
	if err := s.Append(bundle("txn-3", 3)); err == nil {
		t.Fatal("interrupted store accepted another append")
	}
	s.Sync() // flush what landed, like the OS would have
	s.Close()

	// Open re-indexes the orphan data record: the session the crash
	// interrupted is fully archived afterwards.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Sessions(); got != 2 {
		t.Fatalf("sessions after heal = %d, want 2", got)
	}
	b, err := s2.Get("txn-2")
	if err != nil {
		t.Fatalf("orphaned bundle not recovered: %v", err)
	}
	if string(b.Items[0].Blob) != "orphaned" {
		t.Fatalf("recovered bundle = %+v", b)
	}
	if err := s2.Healthy(); err != nil {
		t.Fatalf("healed store unhealthy: %v", err)
	}
}

func TestArchiveTornDataTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, bundle("txn-1", 3, "keep"))
	s.Close()

	// A torn data tail with NO index entry for it: half a record.
	f, err := os.OpenFile(filepath.Join(dir, dataName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 1, 0, 0xaa, 0xbb}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Sessions(); got != 1 {
		t.Fatalf("sessions = %d, want 1", got)
	}
	// The tear is gone: appends after the heal land on a clean boundary.
	mustAppend(t, s2, bundle("txn-2", 4, "after-heal"))
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, err := s3.Get("txn-2"); err != nil {
		t.Fatalf("post-heal append unreadable: %v", err)
	}
}

func TestArchiveTornIndexTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, bundle("txn-1", 3, "one"))
	mustAppend(t, s, bundle("txn-2", 3, "two"))
	s.Close()

	// Tear the index mid-record: drop the last 3 bytes. The data file is
	// intact, so the damaged entry's record is re-indexed from data.
	path := filepath.Join(dir, idxName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Sessions(); got != 2 {
		t.Fatalf("sessions after index heal = %d, want 2", got)
	}
	for _, txn := range []string{"txn-1", "txn-2"} {
		if _, err := s2.Get(txn); err != nil {
			t.Fatalf("get %s after index heal: %v", txn, err)
		}
	}
}

func TestArchiveIndexPointsPastDataRebuilds(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, bundle("txn-1", 3, "one"))
	mustAppend(t, s, bundle("txn-2", 3, "two"))
	s.Close()

	// Chop the data file so the second index entry dangles; the index is
	// now a liar and must be rebuilt from what data remains.
	dataPath := filepath.Join(dir, dataName)
	b, err := os.ReadFile(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dataPath, b[:len(b)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Sessions(); got != 1 {
		t.Fatalf("sessions after rebuild = %d, want 1", got)
	}
	if _, err := s2.Get("txn-1"); err != nil {
		t.Fatalf("surviving bundle unreadable: %v", err)
	}
	if s2.Has("txn-2") {
		t.Fatal("dangling entry survived the rebuild")
	}
}

func TestArchiveGetDetectsBitRot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, bundle("txn-1", 3, "precious"))
	s.Sync()

	// Flip one byte inside the stored bundle body, underneath the open
	// store (simulating rot after the index was built).
	dataPath := filepath.Join(dir, dataName)
	raw, err := os.ReadFile(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(raw, []byte("precious"))
	if i < 0 {
		t.Fatal("blob not found in data file")
	}
	raw[i] ^= 0xFF
	if err := os.WriteFile(dataPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("txn-1"); err == nil {
		t.Fatal("Get returned a corrupted bundle")
	}
	s.Close()
}

func TestArchiveManySessions(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		mustAppend(t, s, bundle(fmt.Sprintf("txn-%04d", i), 3, "a", "b", "c"))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Sessions(); got != n {
		t.Fatalf("sessions = %d, want %d", got, n)
	}
	b, err := s2.Get("txn-0042")
	if err != nil || len(b.Items) != 3 {
		t.Fatalf("get = %+v, %v", b, err)
	}
	if s2.Bytes() <= 0 {
		t.Fatal("Bytes not reported")
	}
}
