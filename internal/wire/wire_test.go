package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	when := time.Date(2010, 9, 13, 10, 30, 25, 123456789, time.UTC)
	e := NewEncoder(64)
	e.U8(7).U32(0xDEADBEEF).U64(1<<40 + 9).I64(-42).Bool(true).Bool(false).
		Bytes32([]byte{1, 2, 3}).String("alice→bob").Time(when).Time(time.Time{})

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<40+9 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.Bytes32(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes32 = %v", got)
	}
	if got := d.String(); got != "alice→bob" {
		t.Errorf("String = %q", got)
	}
	if got := d.Time(); !got.Equal(when) {
		t.Errorf("Time = %v, want %v", got, when)
	}
	if got := d.Time(); !got.IsZero() {
		t.Errorf("zero Time = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2}) // too short for a u32
	_ = d.U32()
	if d.Err() == nil {
		t.Fatal("no error after short read")
	}
	first := d.Err()
	_ = d.U64()
	_ = d.String()
	if d.Err() != first {
		t.Error("error was overwritten; decoder errors must be sticky")
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	e := NewEncoder(0)
	e.U8(1).U8(2)
	d := NewDecoder(e.Bytes())
	_ = d.U8()
	if err := d.Finish(); err == nil {
		t.Fatal("Finish accepted trailing bytes")
	}
}

func TestDecoderNonCanonicalBool(t *testing.T) {
	d := NewDecoder([]byte{2})
	_ = d.Bool()
	if d.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestBytes32CopiesData(t *testing.T) {
	e := NewEncoder(0)
	e.Bytes32([]byte{10, 20})
	raw := e.Bytes()
	d := NewDecoder(raw)
	got := d.Bytes32()
	raw[5] = 99 // mutate the underlying buffer after decode
	if got[0] != 10 {
		t.Fatal("decoded bytes alias the input buffer")
	}
}

func TestBytes32HugeLengthRejected(t *testing.T) {
	// A frame claiming a 4 GiB body must not cause a huge allocation.
	e := NewEncoder(0)
	e.U32(math.MaxUint32)
	d := NewDecoder(e.Bytes())
	if got := d.Bytes32(); got != nil {
		t.Fatalf("got %d bytes for truncated body", len(got))
	}
	if d.Err() == nil {
		t.Fatal("oversized length accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{[]byte("first"), {}, []byte("third message")}
	for _, m := range msgs {
		if err := Frame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := Frame(&buf, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	// A hostile peer announcing an oversized frame must be rejected
	// before allocation.
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(hostile)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("hostile header: err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := Frame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestCanonicalDeterminism(t *testing.T) {
	enc := func() []byte {
		e := NewEncoder(0)
		e.String("tx-1").U64(42).Time(time.Unix(5, 5)).Bytes32([]byte{9})
		return e.Bytes()
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(a uint64, b int64, s string, blob []byte, flag bool) bool {
		e := NewEncoder(0)
		e.U64(a).I64(b).String(s).Bytes32(blob).Bool(flag)
		d := NewDecoder(e.Bytes())
		ga, gb, gs, gblob, gflag := d.U64(), d.I64(), d.String(), d.Bytes32(), d.Bool()
		if d.Finish() != nil {
			return false
		}
		return ga == a && gb == b && gs == s && bytes.Equal(gblob, blob) && gflag == flag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(msg []byte) bool {
		var buf bytes.Buffer
		if err := Frame(&buf, msg); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDecoderNeverPanics: arbitrary bytes through every getter must
// fail cleanly, never panic — decoders sit on the network boundary.
func TestDecoderNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		d := NewDecoder(raw)
		_ = d.U8()
		_ = d.U32()
		_ = d.Bytes32()
		_ = d.String()
		_ = d.Bool()
		_ = d.Time()
		_ = d.I64()
		_ = d.Finish()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
