// Package wire provides deterministic binary encoding and message
// framing for every protocol message in the repository.
//
// Non-repudiation evidence is a signature over message bytes, so the
// encoding must be canonical: the same logical message always encodes
// to the same bytes, with no map iteration order, optional field, or
// floating-point ambiguity. Encoder/Decoder implement a strict
// field-by-field scheme (big-endian fixed-width integers,
// length-prefixed byte strings); Frame/ReadFrame add length-prefixed
// framing for stream transports.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// MaxFrameSize bounds a single framed message (metadata and evidence,
// not bulk blob content, which streams separately). 64 MiB accommodates
// the largest inline payloads used by the experiments.
const MaxFrameSize = 64 << 20

// Frame errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrShortBuffer   = errors.New("wire: decode past end of buffer")
)

// Encoder accumulates a canonical byte encoding.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder, optionally with capacity hint n.
func NewEncoder(n int) *Encoder { return &Encoder{buf: make([]byte, 0, n)} }

// Bytes returns the encoded bytes. The returned slice aliases the
// encoder's buffer; callers that keep encoding must copy first.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) *Encoder { e.buf = append(e.buf, v); return e }

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) *Encoder {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
	return e
}

// U64 appends a big-endian uint64.
func (e *Encoder) U64(v uint64) *Encoder {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
	return e
}

// I64 appends a big-endian int64 (two's complement).
func (e *Encoder) I64(v int64) *Encoder { return e.U64(uint64(v)) }

// Bool appends 0 or 1.
func (e *Encoder) Bool(v bool) *Encoder {
	if v {
		return e.U8(1)
	}
	return e.U8(0)
}

// Bytes32 appends a uint32 length prefix followed by b.
func (e *Encoder) Bytes32(b []byte) *Encoder {
	if len(b) > math.MaxUint32 {
		panic("wire: byte string exceeds uint32 length")
	}
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
	return e
}

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) *Encoder { return e.Bytes32([]byte(s)) }

// Time appends a time as UnixNano. The zero time encodes as the
// sentinel math.MinInt64 so it round-trips exactly.
func (e *Encoder) Time(t time.Time) *Encoder {
	if t.IsZero() {
		return e.I64(math.MinInt64)
	}
	return e.I64(t.UnixNano())
}

// Decoder consumes a canonical byte encoding. All getters record the
// first error; callers check Err once at the end (the sticky-error
// pattern, mirroring bufio.Scanner).
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps b for decoding. The decoder does not copy b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns an error if decoding failed or bytes remain; a strict
// decode of a complete message must consume everything.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes after message", d.Remaining())
	}
	return nil
}

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: reading %s at offset %d", ErrShortBuffer, what, d.off)
	}
}

func (d *Decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Bool reads a byte and requires it to be exactly 0 or 1 (canonical
// encodings must decode strictly).
func (d *Decoder) Bool() bool {
	v := d.U8()
	if d.err == nil && v > 1 {
		d.err = fmt.Errorf("wire: non-canonical bool byte %#x at offset %d", v, d.off-1)
	}
	return v == 1
}

// Bytes32 reads a uint32-length-prefixed byte string, copying it out of
// the underlying buffer.
func (d *Decoder) Bytes32() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if uint64(n) > uint64(d.Remaining()) {
		d.fail("bytes32 body")
		return nil
	}
	return append([]byte(nil), d.take(int(n), "bytes32 body")...)
}

// View32 reads a uint32-length-prefixed byte string WITHOUT copying:
// the result aliases the decoder's buffer and is valid only as long as
// that buffer is. Hot paths use it to peek at fields (magic strings,
// routing keys) before committing to a full copying decode.
func (d *Decoder) View32() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if uint64(n) > uint64(d.Remaining()) {
		d.fail("bytes32 body")
		return nil
	}
	return d.take(int(n), "bytes32 body")
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.View32()) }

// Time reads a time encoded by Encoder.Time.
func (d *Decoder) Time() time.Time {
	ns := d.I64()
	if d.err != nil || ns == math.MinInt64 {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// Frame writes a length-prefixed message to w.
func Frame(w io.Writer, msg []byte) error {
	if len(msg) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(msg))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(msg); err != nil {
		return fmt.Errorf("wire: writing frame body: %w", err)
	}
	return nil
}

// AppendFrame appends the length-prefixed framing of msg to dst and
// returns the extended slice. Assembling header+body in one buffer lets
// a transport issue a single write per message (Frame costs two) and
// reuse a pooled buffer for the assembly.
func AppendFrame(dst, msg []byte) ([]byte, error) {
	if len(msg) > MaxFrameSize {
		return dst, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(msg))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(msg)))
	return append(dst, msg...), nil
}

// ReadFrame reads one length-prefixed message from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	return ReadFrameInto(r, func(n int) []byte { return make([]byte, n) })
}

// ReadFrameInto reads one length-prefixed message from r, obtaining
// the body buffer from alloc (which receives the exact body length and
// must return a slice of at least that length). Transports use it to
// read into pool-backed buffers; ownership of the returned slice
// follows whatever contract the alloc source defines.
func ReadFrameInto(r io.Reader, alloc func(n int) []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	msg := alloc(int(n))[:n]
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, fmt.Errorf("wire: reading %d-byte frame body: %w", n, err)
	}
	return msg, nil
}
