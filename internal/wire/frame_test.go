package wire

import (
	"bytes"
	"errors"
	"testing"
)

// TestAppendFrameMatchesFrame pins the single-write framing to the
// two-write original byte for byte.
func TestAppendFrameMatchesFrame(t *testing.T) {
	for _, msg := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 5000)} {
		var want bytes.Buffer
		if err := Frame(&want, msg); err != nil {
			t.Fatal(err)
		}
		got, err := AppendFrame(nil, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("AppendFrame(%d bytes) differs from Frame", len(msg))
		}
		// Appending onto an existing prefix must preserve it.
		withPrefix, err := AppendFrame([]byte("prefix"), msg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(withPrefix[:6], []byte("prefix")) || !bytes.Equal(withPrefix[6:], want.Bytes()) {
			t.Fatal("AppendFrame clobbered its destination prefix")
		}
	}
	if _, err := AppendFrame(nil, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized AppendFrame err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameIntoUsesAlloc(t *testing.T) {
	frame, err := AppendFrame(nil, []byte("pooled body"))
	if err != nil {
		t.Fatal(err)
	}
	var allocated int
	got, err := ReadFrameInto(bytes.NewReader(frame), func(n int) []byte {
		allocated = n
		return make([]byte, n+32) // oversized alloc must be trimmed
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocated != len("pooled body") {
		t.Fatalf("alloc got n=%d, want %d", allocated, len("pooled body"))
	}
	if !bytes.Equal(got, []byte("pooled body")) {
		t.Fatalf("body = %q", got)
	}
	if len(got) != allocated {
		t.Fatalf("returned body len %d, want trimmed to %d", len(got), allocated)
	}
}
