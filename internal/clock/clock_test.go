package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockNow(t *testing.T) {
	c := Real()
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestRealClockAfter(t *testing.T) {
	c := Real()
	start := time.Now()
	<-c.After(time.Millisecond)
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("After fired too early: %v", elapsed)
	}
}

func TestVirtualNowFixedUntilAdvance(t *testing.T) {
	start := time.Date(2010, 9, 13, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", v.Now(), start)
	}
	v.Advance(3 * time.Hour)
	want := start.Add(3 * time.Hour)
	if !v.Now().Equal(want) {
		t.Fatalf("Now after Advance = %v, want %v", v.Now(), want)
	}
}

func TestVirtualAfterFiresOnAdvance(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	ch := v.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	v.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before its deadline")
	default:
	}
	v.Advance(time.Second)
	select {
	case got := <-ch:
		if !got.Equal(time.Unix(10, 0)) {
			t.Fatalf("fired at %v, want %v", got, time.Unix(10, 0))
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
}

func TestVirtualAfterNonPositiveFiresImmediately(t *testing.T) {
	v := NewVirtual(time.Unix(100, 0))
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-v.After(-time.Second):
	default:
		t.Fatal("After(negative) did not fire immediately")
	}
}

func TestVirtualSleepWakesSleepers(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	var wg sync.WaitGroup
	woke := make(chan int, 3)
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v.Sleep(time.Duration(i) * time.Second)
			woke <- i
		}(i)
	}
	// Wait until all three timers are registered.
	for v.Waiters() != 3 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(2 * time.Second)
	// Sleepers 1 and 2 wake; 3 still waits.
	got := map[int]bool{<-woke: true, <-woke: true}
	if !got[1] || !got[2] {
		t.Fatalf("wrong sleepers woke: %v", got)
	}
	if v.Waiters() != 1 {
		t.Fatalf("Waiters = %d, want 1", v.Waiters())
	}
	v.Advance(time.Second)
	if w := <-woke; w != 3 {
		t.Fatalf("last waker = %d, want 3", w)
	}
	wg.Wait()
}

func TestVirtualAdvanceTo(t *testing.T) {
	v := NewVirtual(time.Unix(50, 0))
	ch := v.After(10 * time.Second)
	v.AdvanceTo(time.Unix(40, 0)) // earlier: no-op
	if !v.Now().Equal(time.Unix(50, 0)) {
		t.Fatalf("AdvanceTo moved clock backwards to %v", v.Now())
	}
	v.AdvanceTo(time.Unix(61, 0))
	select {
	case <-ch:
	default:
		t.Fatal("AdvanceTo past deadline did not fire timer")
	}
}

func TestVirtualManyTimersSameDeadline(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	const n = 64
	chans := make([]<-chan time.Time, n)
	for i := range chans {
		chans[i] = v.After(time.Minute)
	}
	v.Advance(time.Minute)
	for i, ch := range chans {
		select {
		case <-ch:
		default:
			t.Fatalf("timer %d did not fire", i)
		}
	}
}
