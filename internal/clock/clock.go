// Package clock provides a clock abstraction so that protocol engines,
// time limits, and shipping-latency models can run against either the
// real wall clock or a deterministic virtual clock.
//
// The TPNR protocol (paper §4) depends on time limits in three places:
// the per-message time-limit field (§5.5), the client's NRR wait
// timeout that triggers the Resolve sub-protocol, and the TTP's
// response deadline. All of them take a Clock so tests and experiments
// can drive timeouts deterministically.
package clock

import (
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the repository.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that receives the then-current time once
	// d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed.
	Sleep(d time.Duration)
}

// Real returns a Clock backed by the system wall clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }

// Virtual is a deterministic, manually advanced clock. The zero value
// is not usable; construct with NewVirtual.
//
// Virtual time only moves when Advance (or AdvanceTo) is called.
// Waiters registered through After or Sleep fire when the virtual time
// passes their deadline.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewVirtual returns a Virtual clock starting at the given time.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After registers a waiter that fires when the virtual clock reaches
// now+d. If d <= 0 the channel fires immediately.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	deadline := v.now.Add(d)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.waiters = append(v.waiters, &waiter{deadline: deadline, ch: ch})
	return ch
}

// Sleep blocks until the virtual clock has been advanced past now+d by
// another goroutine.
func (v *Virtual) Sleep(d time.Duration) {
	<-v.After(d)
}

// Advance moves the virtual clock forward by d, firing every waiter
// whose deadline has passed.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.fireLocked()
	v.mu.Unlock()
}

// AdvanceTo moves the virtual clock to t if t is later than the current
// virtual time, firing any waiters whose deadlines have passed.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
		v.fireLocked()
	}
	v.mu.Unlock()
}

// Waiters reports how many timers are pending; used by tests to
// synchronize with protocol goroutines.
func (v *Virtual) Waiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}

func (v *Virtual) fireLocked() {
	kept := v.waiters[:0]
	for _, w := range v.waiters {
		if !w.deadline.After(v.now) {
			w.ch <- v.now
		} else {
			kept = append(kept, w)
		}
	}
	v.waiters = kept
}
