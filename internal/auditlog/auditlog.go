// Package auditlog is a hash-chained, optionally signed, append-only
// event log for the provider side. The paper's dispute story rests on
// evidence exchanged with the client; a provider that ALSO keeps a
// tamper-evident log of every protocol event can strengthen its own
// defense ("Eve also needs certain evidence to prove her innocence",
// §2.4): entries are chained so that rewriting history breaks every
// subsequent link, and periodic signed checkpoints pin the chain to a
// point in time.
package auditlog

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/wire"
)

// Errors.
var (
	ErrBrokenChain   = errors.New("auditlog: hash chain broken")
	ErrBadCheckpoint = errors.New("auditlog: checkpoint signature invalid")
	ErrOutOfRange    = errors.New("auditlog: entry index out of range")
)

// Entry is one logged event.
type Entry struct {
	// Index is the entry's position, starting at 0.
	Index uint64
	// At is the append time.
	At time.Time
	// Kind labels the event ("upload", "download", "abort", ...).
	Kind string
	// TxnID is the transaction concerned.
	TxnID string
	// Detail is free-form context.
	Detail string
	// PrevHash chains to the previous entry (zeros for the first).
	PrevHash cryptoutil.Digest
	// Hash covers this entry's canonical encoding including PrevHash.
	Hash cryptoutil.Digest
}

// canonical returns the bytes Hash covers.
func (e *Entry) canonical() []byte {
	enc := wire.NewEncoder(96 + len(e.Detail))
	enc.String("auditlog-entry-v1")
	enc.U64(e.Index)
	enc.Time(e.At)
	enc.String(e.Kind)
	enc.String(e.TxnID)
	enc.String(e.Detail)
	enc.Bytes32(e.PrevHash.Sum)
	return enc.Bytes()
}

// Log is the append-only chained log. Safe for concurrent use. A Log
// opened with OpenFile additionally persists every entry to disk,
// optionally fsyncing each append (see Sync, Close, Err).
type Log struct {
	mu      sync.RWMutex
	entries []Entry
	now     func() time.Time

	// File sink state; all nil/zero for a purely in-memory Log.
	file      *os.File
	syncEach  bool
	truncated bool
	ferr      error
}

// New creates an empty log stamping entries with now (nil = time.Now).
func New(now func() time.Time) *Log {
	if now == nil {
		now = time.Now
	}
	return &Log{now: now}
}

// Append adds an event and returns the new entry.
func (l *Log) Append(kind, txnID, detail string) Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Entry{
		Index:  uint64(len(l.entries)),
		At:     l.now(),
		Kind:   kind,
		TxnID:  txnID,
		Detail: detail,
	}
	if len(l.entries) > 0 {
		e.PrevHash = l.entries[len(l.entries)-1].Hash.Clone()
	} else {
		e.PrevHash = cryptoutil.Digest{Alg: cryptoutil.SHA256, Sum: make([]byte, 32)}
	}
	e.Hash = cryptoutil.Sum(cryptoutil.SHA256, e.canonical())
	l.entries = append(l.entries, e)
	l.persist(e)
	return e
}

// Len returns the number of entries.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Entry returns one entry by index.
func (l *Log) Entry(i int) (Entry, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if i < 0 || i >= len(l.entries) {
		return Entry{}, fmt.Errorf("%w: %d of %d", ErrOutOfRange, i, len(l.entries))
	}
	return l.entries[i], nil
}

// Entries returns a copy of all entries.
func (l *Log) Entries() []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Entry(nil), l.entries...)
}

// ByTxn returns the entries for one transaction, in order.
func (l *Log) ByTxn(txnID string) []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Entry
	for _, e := range l.entries {
		if e.TxnID == txnID {
			out = append(out, e)
		}
	}
	return out
}

// Verify walks the chain and fails at the first broken link — any
// historical rewrite (content, order, deletion, insertion) breaks
// every hash from that point on.
func Verify(entries []Entry) error {
	prev := cryptoutil.Digest{Alg: cryptoutil.SHA256, Sum: make([]byte, 32)}
	for i := range entries {
		e := entries[i]
		if e.Index != uint64(i) {
			return fmt.Errorf("%w: entry %d carries index %d", ErrBrokenChain, i, e.Index)
		}
		if !e.PrevHash.Equal(prev) {
			return fmt.Errorf("%w: entry %d prev-hash mismatch", ErrBrokenChain, i)
		}
		want := cryptoutil.Sum(cryptoutil.SHA256, e.canonical())
		if !e.Hash.Equal(want) {
			return fmt.Errorf("%w: entry %d content hash mismatch", ErrBrokenChain, i)
		}
		prev = e.Hash
	}
	return nil
}

// Checkpoint is a signed commitment to the log's state at a point in
// time: (length, head hash) under the operator's key.
type Checkpoint struct {
	At        time.Time
	Length    uint64
	HeadHash  cryptoutil.Digest
	Signature []byte
}

func checkpointBytes(at time.Time, length uint64, head cryptoutil.Digest) []byte {
	e := wire.NewEncoder(64)
	e.String("auditlog-checkpoint-v1")
	e.Time(at)
	e.U64(length)
	e.Bytes32(head.Sum)
	return e.Bytes()
}

// Checkpoint signs the current head under the operator's key.
func (l *Log) Checkpoint(key cryptoutil.KeyPair) (*Checkpoint, error) {
	l.mu.RLock()
	length := uint64(len(l.entries))
	var head cryptoutil.Digest
	if length > 0 {
		head = l.entries[length-1].Hash.Clone()
	} else {
		head = cryptoutil.Digest{Alg: cryptoutil.SHA256, Sum: make([]byte, 32)}
	}
	at := l.now()
	l.mu.RUnlock()

	signer := key.Signer()
	if signer == nil {
		return nil, fmt.Errorf("auditlog: key pair holds no private key")
	}
	sig, err := signer.Sign(checkpointBytes(at, length, head))
	if err != nil {
		return nil, fmt.Errorf("auditlog: signing checkpoint: %w", err)
	}
	return &Checkpoint{At: at, Length: length, HeadHash: head, Signature: sig}, nil
}

// VerifyCheckpoint checks a checkpoint under a raw RSA key.
//
// Deprecated: use VerifyCheckpointWith, which accepts any signature
// scheme.
func VerifyCheckpoint(pub *rsa.PublicKey, cp *Checkpoint, entries []Entry) error {
	return VerifyCheckpointWith(cryptoutil.NewRSAPublicKey(pub), cp, entries)
}

// VerifyCheckpointWith checks a checkpoint's signature under the
// signer's public key, and that entries is a chain consistent with it:
// the chain verifies, has at least cp.Length entries, and entry
// cp.Length-1 carries the committed head hash. Extra entries after the
// checkpoint are fine (append-only); fewer, or a different head, mean
// history was rewritten.
func VerifyCheckpointWith(pub cryptoutil.PublicKey, cp *Checkpoint, entries []Entry) error {
	if err := pub.Verify(checkpointBytes(cp.At, cp.Length, cp.HeadHash), cp.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if err := Verify(entries); err != nil {
		return err
	}
	if uint64(len(entries)) < cp.Length {
		return fmt.Errorf("%w: log shrank below checkpoint (%d < %d)", ErrBrokenChain, len(entries), cp.Length)
	}
	if cp.Length > 0 {
		if !entries[cp.Length-1].Hash.Equal(cp.HeadHash) {
			return fmt.Errorf("%w: entry %d does not match checkpointed head", ErrBrokenChain, cp.Length-1)
		}
	}
	return nil
}
