package auditlog

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cryptoutil"
)

func TestAppendAndChain(t *testing.T) {
	l := New(nil)
	for i := 0; i < 10; i++ {
		e := l.Append("upload", fmt.Sprintf("txn-%d", i), "ok")
		if e.Index != uint64(i) {
			t.Fatalf("entry %d has index %d", i, e.Index)
		}
	}
	if l.Len() != 10 {
		t.Fatalf("Len = %d", l.Len())
	}
	if err := Verify(l.Entries()); err != nil {
		t.Fatalf("honest chain fails verification: %v", err)
	}
}

func TestVerifyEmptyChain(t *testing.T) {
	if err := Verify(nil); err != nil {
		t.Fatalf("empty chain: %v", err)
	}
}

func TestRewriteDetected(t *testing.T) {
	l := New(nil)
	for i := 0; i < 5; i++ {
		l.Append("upload", "t", fmt.Sprintf("v%d", i))
	}
	entries := l.Entries()

	// Content rewrite.
	mutated := append([]Entry(nil), entries...)
	mutated[2].Detail = "rewritten history"
	if err := Verify(mutated); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("content rewrite: %v", err)
	}

	// Deletion.
	deleted := append(append([]Entry(nil), entries[:2]...), entries[3:]...)
	if err := Verify(deleted); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("deletion: %v", err)
	}

	// Reorder.
	swapped := append([]Entry(nil), entries...)
	swapped[1], swapped[2] = swapped[2], swapped[1]
	if err := Verify(swapped); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("reorder: %v", err)
	}

	// Truncation alone passes Verify (a prefix is a valid chain) — the
	// checkpoint is what catches it; see TestCheckpointDetectsTruncation.
	if err := Verify(entries[:3]); err != nil {
		t.Fatalf("prefix: %v", err)
	}
}

func TestRewriteWithRecomputedHashesDetected(t *testing.T) {
	// A smarter forger recomputes the hash of the entry they changed —
	// but not the chain after it.
	l := New(nil)
	for i := 0; i < 4; i++ {
		l.Append("upload", "t", fmt.Sprintf("v%d", i))
	}
	entries := l.Entries()
	entries[1].Detail = "rewritten"
	entries[1].Hash = cryptoutil.Sum(cryptoutil.SHA256, entries[1].canonical())
	if err := Verify(entries); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("recomputed rewrite: %v", err)
	}
}

func TestByTxn(t *testing.T) {
	l := New(nil)
	l.Append("upload", "t1", "a")
	l.Append("upload", "t2", "b")
	l.Append("download", "t1", "c")
	got := l.ByTxn("t1")
	if len(got) != 2 || got[0].Detail != "a" || got[1].Detail != "c" {
		t.Fatalf("ByTxn = %+v", got)
	}
	if len(l.ByTxn("ghost")) != 0 {
		t.Fatal("ByTxn(ghost) nonempty")
	}
}

func TestEntryAccess(t *testing.T) {
	l := New(nil)
	l.Append("k", "t", "d")
	if _, err := l.Entry(0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Entry(1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out of range: %v", err)
	}
	if _, err := l.Entry(-1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative: %v", err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	key := cryptoutil.InsecureTestKey(130)
	l := New(nil)
	for i := 0; i < 6; i++ {
		l.Append("upload", "t", "x")
	}
	cp, err := l.Checkpoint(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCheckpoint(key.Public(), cp, l.Entries()); err != nil {
		t.Fatalf("honest checkpoint: %v", err)
	}
	// Appending after the checkpoint stays valid.
	l.Append("download", "t", "later")
	if err := VerifyCheckpoint(key.Public(), cp, l.Entries()); err != nil {
		t.Fatalf("append after checkpoint: %v", err)
	}
}

func TestCheckpointDetectsTruncation(t *testing.T) {
	key := cryptoutil.InsecureTestKey(130)
	l := New(nil)
	for i := 0; i < 6; i++ {
		l.Append("upload", "t", fmt.Sprintf("v%d", i))
	}
	cp, err := l.Checkpoint(key)
	if err != nil {
		t.Fatal(err)
	}
	trunc := l.Entries()[:4]
	if err := VerifyCheckpoint(key.Public(), cp, trunc); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("truncation: %v", err)
	}
}

func TestCheckpointForgedSignature(t *testing.T) {
	key := cryptoutil.InsecureTestKey(130)
	other := cryptoutil.InsecureTestKey(131)
	l := New(nil)
	l.Append("upload", "t", "x")
	cp, err := l.Checkpoint(other) // signed by the wrong key
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCheckpoint(key.Public(), cp, l.Entries()); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("forged checkpoint: %v", err)
	}
}

func TestCheckpointEmptyLog(t *testing.T) {
	key := cryptoutil.InsecureTestKey(130)
	l := New(nil)
	cp, err := l.Checkpoint(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCheckpoint(key.Public(), cp, nil); err != nil {
		t.Fatalf("empty-log checkpoint: %v", err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := New(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Append("k", fmt.Sprintf("g%d", g), "x")
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("Len = %d", l.Len())
	}
	if err := Verify(l.Entries()); err != nil {
		t.Fatalf("concurrent chain invalid: %v", err)
	}
}

func TestQuickChainAlwaysVerifies(t *testing.T) {
	f := func(kinds []string) bool {
		l := New(func() time.Time { return time.Unix(42, 0) })
		for i, k := range kinds {
			l.Append(k, fmt.Sprintf("t%d", i%3), k+"-detail")
		}
		return Verify(l.Entries()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
