package auditlog

// File sink: a Log can persist its chain to an append-only file so the
// audit trail that backs arbitration survives a crash. Entries are
// length-prefixed frames (wire.Frame); a torn final frame — the only
// damage a crash mid-append can cause — is truncated away on open,
// while any interior damage breaks the hash chain and fails the open.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/wire"
)

const fileEntryMagic = "auditlog-file-entry-v1"

// ErrFileSink marks a file-sink write failure (see Log.Err).
var ErrFileSink = errors.New("auditlog: file sink write failed")

// encodeEntry renders the full entry, Hash included, for the file sink.
func encodeEntry(e Entry) []byte {
	enc := wire.NewEncoder(128 + len(e.Detail))
	enc.String(fileEntryMagic)
	enc.U64(e.Index)
	enc.Time(e.At)
	enc.String(e.Kind)
	enc.String(e.TxnID)
	enc.String(e.Detail)
	enc.Bytes32(e.PrevHash.Sum)
	enc.Bytes32(e.Hash.Sum)
	return enc.Bytes()
}

func decodeEntry(b []byte) (Entry, error) {
	dec := wire.NewDecoder(b)
	if magic := dec.String(); dec.Err() == nil && magic != fileEntryMagic {
		return Entry{}, fmt.Errorf("auditlog: bad entry magic %q", magic)
	}
	e := Entry{
		Index:    dec.U64(),
		At:       dec.Time(),
		Kind:     dec.String(),
		TxnID:    dec.String(),
		Detail:   dec.String(),
		PrevHash: cryptoutil.Digest{Alg: cryptoutil.SHA256, Sum: dec.Bytes32()},
		Hash:     cryptoutil.Digest{Alg: cryptoutil.SHA256, Sum: dec.Bytes32()},
	}
	if err := dec.Finish(); err != nil {
		return Entry{}, fmt.Errorf("auditlog: decoding entry: %w", err)
	}
	return e, nil
}

// OpenFile opens (creating if absent) a file-backed log at path. Any
// existing entries are loaded and chain-verified — a tampered file
// refuses to open. A torn final frame, the signature of a crash during
// an append, is truncated away; Truncated reports whether that
// happened. With syncOnAppend, every Append fsyncs before returning,
// so no logged event can be lost to a crash (the -fsync always of the
// audit trail). now stamps new entries (nil = time.Now).
func OpenFile(path string, now func() time.Time, syncOnAppend bool) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("auditlog: opening %s: %w", path, err)
	}
	entries, good, truncated, err := loadEntries(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if truncated {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("auditlog: truncating torn tail of %s: %w", path, err)
		}
	}
	if err := Verify(entries); err != nil {
		f.Close()
		return nil, fmt.Errorf("auditlog: %s: %w", path, err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("auditlog: seeking %s: %w", path, err)
	}
	if now == nil {
		now = time.Now
	}
	return &Log{
		entries:   entries,
		now:       now,
		file:      f,
		syncEach:  syncOnAppend,
		truncated: truncated,
	}, nil
}

// loadEntries reads frames until EOF, returning the decoded entries,
// the offset just past the last good frame, and whether a torn tail
// was found after it.
func loadEntries(f *os.File) ([]Entry, int64, bool, error) {
	var (
		entries []Entry
		good    int64
	)
	for {
		frame, err := wire.ReadFrame(f)
		if err == io.EOF {
			return entries, good, false, nil
		}
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			// A crash mid-append leaves a partial frame; everything before
			// it is intact (the chain proves so).
			return entries, good, true, nil
		}
		if err != nil {
			return nil, 0, false, fmt.Errorf("auditlog: reading log file: %w", err)
		}
		e, err := decodeEntry(frame)
		if err != nil {
			return nil, 0, false, err
		}
		entries = append(entries, e)
		good += 4 + int64(len(frame))
	}
}

// persist writes e to the file sink, if any. Called with l.mu held.
// A write failure is sticky (Err) — the in-memory chain stays
// authoritative, but the operator must know durability is gone.
func (l *Log) persist(e Entry) {
	if l.file == nil || l.ferr != nil {
		return
	}
	if err := wire.Frame(l.file, encodeEntry(e)); err != nil {
		l.ferr = fmt.Errorf("%w: %v", ErrFileSink, err)
		return
	}
	if l.syncEach {
		if err := l.file.Sync(); err != nil {
			l.ferr = fmt.Errorf("%w: fsync: %v", ErrFileSink, err)
		}
	}
}

// Sync flushes the file sink to stable storage. A no-op for in-memory
// logs.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	if err := l.file.Sync(); err != nil {
		return fmt.Errorf("auditlog: fsync: %w", err)
	}
	return nil
}

// Close syncs and closes the file sink. The in-memory log remains
// readable; further appends are memory-only.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	err := l.file.Sync()
	if cerr := l.file.Close(); err == nil {
		err = cerr
	}
	l.file = nil
	return err
}

// Err returns the first file-sink write failure, if any. Entries keep
// accumulating in memory after a sink failure, so arbitration evidence
// is never silently dropped — but it is no longer crash-durable.
func (l *Log) Err() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.ferr
}

// Truncated reports whether OpenFile cut away a torn final frame.
func (l *Log) Truncated() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.truncated
}
