package auditlog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFileSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, err := OpenFile(path, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	l.Append("upload", "txn-1", "stored x")
	l.Append("abort", "txn-2", "client abort")
	if err := l.Err(); err != nil {
		t.Fatalf("sink error after appends: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFile(path, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Truncated() {
		t.Fatal("clean file reported as truncated")
	}
	if l2.Len() != 2 {
		t.Fatalf("reloaded %d entries, want 2", l2.Len())
	}
	got := l2.Entries()
	if got[0].Kind != "upload" || got[0].TxnID != "txn-1" || got[1].Kind != "abort" {
		t.Fatalf("reloaded entries wrong: %+v", got)
	}
	if err := Verify(got); err != nil {
		t.Fatalf("reloaded chain does not verify: %v", err)
	}
	// Appends continue the persisted chain.
	l2.Append("download", "txn-1", "served x")
	l2.Close()
	l3, err := OpenFile(path, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.Len() != 3 {
		t.Fatalf("after third append reloaded %d entries, want 3", l3.Len())
	}
	if err := Verify(l3.Entries()); err != nil {
		t.Fatalf("extended chain does not verify: %v", err)
	}
}

func TestFileSinkTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, err := OpenFile(path, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	l.Append("upload", "txn-1", "ok")
	l.Append("upload", "txn-2", "ok")
	l.Close()

	// A crash mid-append leaves a partial final frame.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	whole := fi.Size()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := OpenFile(path, nil, true)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer l2.Close()
	if !l2.Truncated() {
		t.Fatal("torn tail not reported")
	}
	if l2.Len() != 2 {
		t.Fatalf("torn open kept %d entries, want 2", l2.Len())
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != whole {
		t.Fatalf("file not truncated back to %d bytes: %v %v", whole, fi.Size(), err)
	}
}

func TestFileSinkRejectsTamperedInterior(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, err := OpenFile(path, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	l.Append("upload", "txn-1", "aaaa")
	l.Append("upload", "txn-2", "bbbb")
	l.Close()

	// Flip one payload byte in the middle of the file: the rewrite must
	// break the hash chain, not load silently.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/4] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, nil, true); err == nil {
		t.Fatal("tampered log opened without error")
	}
}

func TestFileSinkSyncAndCloseOnMemoryLog(t *testing.T) {
	l := New(nil)
	l.Append("upload", "txn", "x")
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync on memory log: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close on memory log: %v", err)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("Err on memory log: %v", err)
	}
}

func TestFileSinkErrSticky(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, err := OpenFile(path, func() time.Time { return time.Unix(1, 0) }, false)
	if err != nil {
		t.Fatal(err)
	}
	// Close the fd out from under the sink: the next append must record
	// a sticky sink error while the in-memory chain keeps growing.
	l.mu.Lock()
	l.file.Close()
	l.mu.Unlock()
	l.Append("upload", "txn", "x")
	if !errors.Is(l.Err(), ErrFileSink) {
		t.Fatalf("Err = %v, want ErrFileSink", l.Err())
	}
	if l.Len() != 1 {
		t.Fatal("in-memory chain lost the entry after sink failure")
	}
	l.file = nil // avoid double close
	l.Close()
}
