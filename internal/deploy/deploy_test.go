package deploy_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/deploy"
	"repro/internal/storage"
)

func TestNewStartsWorkingDeployment(t *testing.T) {
	d, err := deploy.New(deploy.Config{TestKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	conn, err := d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := d.Client.Upload(context.Background(), conn, "t", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Store.Get("k"); err != nil {
		t.Fatal(err)
	}
	if d.ClientCounters.Snapshot()["msgs_sent"] == 0 {
		t.Error("client counters not wired")
	}
}

func TestCloseStopsListeners(t *testing.T) {
	d, err := deploy.New(deploy.Config{TestKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := d.DialProvider(); err == nil {
		t.Error("DialProvider succeeded after Close")
	}
	if _, err := d.DialTTP(); err == nil {
		t.Error("DialTTP succeeded after Close")
	}
}

func TestCustomStoreAndClock(t *testing.T) {
	store := storage.NewMem(nil)
	clk := clock.Real()
	d, err := deploy.New(deploy.Config{TestKeys: true, ProviderStore: store, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Store != storage.Store(store) {
		t.Error("custom store not used")
	}
	if d.Clock != clk {
		t.Error("custom clock not wired")
	}
}

func TestCertificatesVerifyAgainstDeploymentCA(t *testing.T) {
	d, err := deploy.New(deploy.Config{TestKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, name := range []string{deploy.ClientName, deploy.ProviderName, deploy.TTPName} {
		cert, err := d.CA.Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := d.CA.Verify(cert, time.Now()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestFreshKeysDeployment(t *testing.T) {
	// Non-TestKeys path with small keys: everything still wires up.
	d, err := deploy.New(deploy.Config{KeyBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	conn, err := d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := d.Client.Upload(context.Background(), conn, "t", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
}
