// Package deploy wires complete TPNR deployments — CA, client,
// provider, TTP, in-memory network, and blob store — for examples,
// experiments, benchmarks and tests. It removes ~80 lines of identical
// setup from every harness that needs "an Alice, a Bob and a TTP that
// can talk".
package deploy

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/metrics"
	"repro/internal/pki"
	"repro/internal/replica"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/ttp"
	"repro/internal/wal"
)

// Party names used across the repository's deployments.
const (
	ClientName   = "alice"
	ProviderName = "bob"
	TTPName      = "ttp"
)

// Config parameterizes a deployment.
type Config struct {
	// Clock drives all parties; nil means the real clock.
	Clock clock.Clock
	// ResponseTimeout and MessageLifetime set protocol timing on every
	// party (zero means the package defaults).
	ResponseTimeout time.Duration
	MessageLifetime time.Duration
	// Scheme selects the signature scheme for every identity key
	// (cryptoutil.SchemeRSA or cryptoutil.SchemeEd25519). Zero resolves
	// from the TPNR_SCHEME environment variable ("rsa" when unset), so
	// the chaos matrix and CI can flip an entire deployment without code
	// changes.
	Scheme cryptoutil.Scheme
	// KeyBits sets identity key size; 0 means cryptoutil.DefaultRSABits.
	// Tests and benchmarks pass a smaller size or use TestKeys. Only
	// meaningful for the RSA scheme.
	KeyBits int
	// TestKeys, when true, uses the process-wide cached insecure test
	// keys instead of generating fresh ones (fast; never production).
	TestKeys bool
	// ProviderStore overrides the provider's blob store (default: a
	// fresh in-memory store).
	ProviderStore storage.Store
	// ClientOpts, ProviderOpts and TTPOpts append extra core options to
	// the respective party constructor — the chaos harness uses them to
	// attach per-party crash journals (core.WithJournal).
	ClientOpts, ProviderOpts, TTPOpts []core.Option
	// ProviderShards > 1 builds that many provider shards behind a
	// core.ShardedEngine instead of a single Provider. All shards share
	// the blob store and identity; ProviderOpts applies to every shard.
	ProviderShards int
	// ProviderShardOpts, when set with ProviderShards > 1, appends
	// per-shard options (the chaos harness attaches each shard's own
	// journal and archive here).
	ProviderShardOpts func(shard int) []core.Option
	// ProviderServerOpts and TTPServerOpts configure the core.Server
	// runtimes fronting Bob and the TTP (admission control, expiry
	// reaper, registries).
	ProviderServerOpts, TTPServerOpts []core.ServerOption

	// ProviderReplicas > 1 replicates each provider shard's evidence
	// journal to ProviderReplicas-1 in-process follower replicas over
	// the deployment network (one replica.Group per shard): the shard
	// only acks a protocol step — only signs the NRR — once the step's
	// journal record is durable on the write quorum. Every shard must
	// have a journal attached (ProviderOpts / ProviderShardOpts) and
	// ReplicaWAL must be set.
	ProviderReplicas int
	// ProviderQuorum is the total number of durable copies — leader
	// included — each append must reach before it is acked. Zero means
	// min(2, ProviderReplicas).
	ProviderQuorum int
	// ReplicaWAL opens the journal for follower `replica` (1-based; the
	// leader is replica 0) of provider shard `shard`. The deployment
	// closes what it opens. The conventional layout nests followers
	// under the shard: <walRoot>/<shard.DirName(s)>/replica-0R.
	ReplicaWAL func(shard, replica int) (*wal.WAL, error)
	// ReplicaAckTimeout and ReplicaRepairInterval override the
	// replication group's quorum-wait bound and anti-entropy cadence
	// (zero keeps the replica package defaults). The chaos harness
	// tightens both so degraded-mode transitions happen inside test
	// patience.
	ReplicaAckTimeout     time.Duration
	ReplicaRepairInterval time.Duration
}

// Deployment is a fully wired TPNR installation.
type Deployment struct {
	CA     *pki.Authority
	Client *core.Client
	// Engine is Bob's protocol engine behind the provider-shaped
	// surface: the single Provider below, or a core.ShardedEngine when
	// ProviderShards > 1. Code that works for both shapes (dispute
	// reads, recovery, health) should go through Engine.
	Engine core.ProviderEngine
	// Provider is Bob's first (or only) shard, kept for the single-shard
	// callers; ProviderServer is the concurrent runtime fronting Engine
	// until Close.
	Provider       *core.Provider
	ProviderServer *core.Server
	// TTPServer mediates Resolve; TTPRuntime fronts it until Close.
	TTPServer  *ttp.Server
	TTPRuntime *core.Server
	// Net is the in-memory address space: ProviderName and TTPName are
	// listening.
	Net *transport.Network
	// Store is the provider's blob store.
	Store storage.Store
	// ClientCounters, ProviderCounters, TTPCounters expose per-party
	// metrics.
	ClientCounters, ProviderCounters, TTPCounters *metrics.Counters

	Clock clock.Clock

	// ReplicaGroups holds the per-shard journal replication groups when
	// ProviderReplicas > 1 (ReplicaGroups[s] replicates shard s); empty
	// otherwise. Tests poll Converged/Quorum on them.
	ReplicaGroups []*replica.Group

	cancel       context.CancelFunc
	listeners    []transport.Listener
	replicaHosts []*replica.Host
	replicaWALs  []*wal.WAL
}

// New builds and starts a deployment.
func New(cfg Config) (*Deployment, error) {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real()
	}
	keys, err := identityKeys(cfg)
	if err != nil {
		return nil, err
	}
	caKey, aliceKey, bobKey, ttpKey := keys[0], keys[1], keys[2], keys[3]

	ca := pki.NewAuthority("cloud-ca", caKey)
	notBefore := clk.Now().Add(-time.Hour)
	notAfter := clk.Now().Add(10 * 365 * 24 * time.Hour)
	aliceID, err := pki.NewIdentity(ca, ClientName, aliceKey, notBefore, notAfter)
	if err != nil {
		return nil, err
	}
	bobID, err := pki.NewIdentity(ca, ProviderName, bobKey, notBefore, notAfter)
	if err != nil {
		return nil, err
	}
	ttpID, err := pki.NewIdentity(ca, TTPName, ttpKey, notBefore, notAfter)
	if err != nil {
		return nil, err
	}

	dir := core.Directory(ca.Lookup)
	var cCtr, pCtr, tCtr metrics.Counters
	opts := func(id *pki.Identity, ctr *metrics.Counters) []core.Option {
		return []core.Option{
			core.WithIdentity(id),
			core.WithCAPublicKey(ca.Key()),
			core.WithDirectory(dir),
			core.WithClock(clk),
			core.WithCounters(ctr),
			core.WithResponseTimeout(cfg.ResponseTimeout),
			core.WithMessageLifetime(cfg.MessageLifetime),
		}
	}

	store := cfg.ProviderStore
	if store == nil {
		store = storage.NewMem(clk.Now)
	}
	shardCount := cfg.ProviderShards
	if shardCount < 1 {
		shardCount = 1
	}
	shards := make([]*core.Provider, shardCount)
	for i := range shards {
		providerOpts := append(opts(bobID, &pCtr), core.WithStore(store), core.WithTTPID(TTPName))
		providerOpts = append(providerOpts, cfg.ProviderOpts...)
		if cfg.ProviderShardOpts != nil {
			providerOpts = append(providerOpts, cfg.ProviderShardOpts(i)...)
		}
		shards[i], err = core.NewProvider(providerOpts...)
		if err != nil {
			return nil, err
		}
	}
	provider := shards[0]
	var engine core.ProviderEngine = provider
	if shardCount > 1 {
		engine, err = core.NewShardedEngine(shards)
		if err != nil {
			return nil, err
		}
	}
	client, err := core.NewClient(ProviderName, TTPName,
		append(opts(aliceID, &cCtr), cfg.ClientOpts...)...)
	if err != nil {
		return nil, err
	}

	net := transport.NewNetwork()
	ttpServer, err := ttp.New(func(ctx context.Context, partyID string) (transport.Conn, error) {
		return net.DialContext(ctx, partyID)
	}, append(opts(ttpID, &tCtr), cfg.TTPOpts...)...)
	if err != nil {
		return nil, err
	}

	groups, rHosts, rWALs, err := wireReplication(cfg, net, shards)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	d := &Deployment{
		CA:               ca,
		Client:           client,
		Engine:           engine,
		Provider:         provider,
		ProviderServer:   core.NewServer(engine, cfg.ProviderServerOpts...),
		TTPServer:        ttpServer,
		TTPRuntime:       core.NewServer(ttpServer, cfg.TTPServerOpts...),
		Net:              net,
		Store:            store,
		ClientCounters:   &cCtr,
		ProviderCounters: &pCtr,
		TTPCounters:      &tCtr,
		Clock:            clk,
		ReplicaGroups:    groups,
		cancel:           cancel,
		replicaHosts:     rHosts,
		replicaWALs:      rWALs,
	}
	if err := d.serve(ctx, d.ProviderServer, ProviderName); err != nil {
		cancel()
		return nil, err
	}
	if err := d.serve(ctx, d.TTPRuntime, TTPName); err != nil {
		cancel()
		return nil, err
	}
	return d, nil
}

// ReplicaAddr names follower `replica` of provider shard `s` on the
// deployment network.
func ReplicaAddr(s, replica int) string {
	return fmt.Sprintf("%s/%s/replica-%02d", ProviderName, shard.DirName(s), replica)
}

// wireReplication builds one replication group per provider shard:
// ProviderReplicas-1 follower hosts listening on the deployment
// network, a leader group streaming each shard's journal to them, and
// the group attached to the shard so journal appends wait for the
// write quorum before the shard acks.
func wireReplication(cfg Config, net *transport.Network, shards []*core.Provider) (
	groups []*replica.Group, hosts []*replica.Host, wals []*wal.WAL, err error) {
	if cfg.ProviderReplicas <= 1 {
		return nil, nil, nil, nil
	}
	cleanup := func() {
		for _, g := range groups {
			g.Close()
		}
		for _, h := range hosts {
			h.Close()
		}
		for _, w := range wals {
			w.Close()
		}
	}
	if cfg.ReplicaWAL == nil {
		return nil, nil, nil, fmt.Errorf("deploy: ProviderReplicas=%d requires ReplicaWAL", cfg.ProviderReplicas)
	}
	quorum := cfg.ProviderQuorum
	if quorum == 0 {
		quorum = 2
		if quorum > cfg.ProviderReplicas {
			quorum = cfg.ProviderReplicas
		}
	}
	if quorum > cfg.ProviderReplicas {
		return nil, nil, nil, fmt.Errorf("deploy: quorum %d exceeds replicas %d", quorum, cfg.ProviderReplicas)
	}
	for si, p := range shards {
		if p.Journal() == nil {
			cleanup()
			return nil, nil, nil, fmt.Errorf("deploy: provider shard %d has no journal to replicate (attach core.WithJournal)", si)
		}
		var dialers []replica.Dialer
		for ri := 1; ri < cfg.ProviderReplicas; ri++ {
			fw, werr := cfg.ReplicaWAL(si, ri)
			if werr != nil {
				cleanup()
				return nil, nil, nil, fmt.Errorf("deploy: opening shard %d replica %d journal: %w", si, ri, werr)
			}
			wals = append(wals, fw)
			addr := ReplicaAddr(si, ri)
			ln, lerr := net.Listen(addr)
			if lerr != nil {
				cleanup()
				return nil, nil, nil, lerr
			}
			hosts = append(hosts, replica.Serve(ln, replica.NewFollower(fw)))
			dialers = append(dialers, func() (transport.Conn, error) { return net.Dial(addr) })
		}
		g := replica.NewGroup(p.Journal(), dialers, replica.Options{
			Quorum:         quorum,
			AckTimeout:     cfg.ReplicaAckTimeout,
			RepairInterval: cfg.ReplicaRepairInterval,
			Name:           fmt.Sprintf("replica_shard%02d", si),
		})
		groups = append(groups, g)
		p.SetReplicator(g)
	}
	return groups, hosts, wals, nil
}

// SchemeOf resolves cfg.Scheme, falling back to the TPNR_SCHEME
// environment variable ("rsa" when unset or empty).
func (cfg Config) SchemeOf() (cryptoutil.Scheme, error) {
	if cfg.Scheme != 0 {
		return cfg.Scheme, nil
	}
	s, err := cryptoutil.ParseScheme(os.Getenv("TPNR_SCHEME"))
	if err != nil {
		return 0, fmt.Errorf("deploy: TPNR_SCHEME: %w", err)
	}
	return s, nil
}

func identityKeys(cfg Config) ([]cryptoutil.KeyPair, error) {
	scheme, err := cfg.SchemeOf()
	if err != nil {
		return nil, err
	}
	if cfg.TestKeys {
		keys := make([]cryptoutil.KeyPair, 4)
		for i := range keys {
			keys[i] = cryptoutil.InsecureTestKeyScheme(100+i, scheme)
		}
		return keys, nil
	}
	keys := make([]cryptoutil.KeyPair, 4)
	for i := range keys {
		var k cryptoutil.KeyPair
		var err error
		if scheme == cryptoutil.SchemeRSA {
			bits := cfg.KeyBits
			if bits == 0 {
				bits = cryptoutil.DefaultRSABits
			}
			k, err = cryptoutil.GenerateKeyBits(bits)
		} else {
			k, err = cryptoutil.GenerateKeyPair(scheme)
		}
		if err != nil {
			return nil, fmt.Errorf("deploy: generating identity key: %w", err)
		}
		keys[i] = k
	}
	return keys, nil
}

// serve registers addr on the in-memory network and runs srv's accept
// loop in the background.
func (d *Deployment) serve(ctx context.Context, srv *core.Server, addr string) error {
	l, err := d.Net.Listen(addr)
	if err != nil {
		return err
	}
	d.listeners = append(d.listeners, l)
	go srv.Serve(ctx, l)
	return nil
}

// DialProvider opens a client connection to Bob.
func (d *Deployment) DialProvider() (transport.Conn, error) { return d.Net.Dial(ProviderName) }

// DialTTP opens a client connection to the TTP.
func (d *Deployment) DialTTP() (transport.Conn, error) { return d.Net.Dial(TTPName) }

// NewPool builds a SessionPool over this deployment's provider with
// §4.3 escalation wired to the TTP. A sharded deployment hands the
// pool the matching ring, so operations pin connections per shard in
// lockstep with the server-side routing.
func (d *Deployment) NewPool(opts ...core.PoolOption) *core.SessionPool {
	base := []core.PoolOption{core.PoolTTPDial(func(ctx context.Context) (transport.Conn, error) {
		return d.Net.DialContext(ctx, TTPName)
	})}
	if se, ok := d.Engine.(*core.ShardedEngine); ok {
		base = append(base, core.PoolShardRing(shard.New(se.N())))
	}
	opts = append(base, opts...)
	return core.NewSessionPool(d.Client, func(ctx context.Context) (transport.Conn, error) {
		return d.Net.DialContext(ctx, ProviderName)
	}, opts...)
}

// Close gracefully shuts both servers down, draining in-flight
// sessions for up to a second each.
func (d *Deployment) Close() {
	// Close the listeners here, not just in Shutdown: the Serve
	// goroutines may not have registered them yet, and a dial must fail
	// the moment Close returns.
	for _, l := range d.listeners {
		l.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	d.ProviderServer.Shutdown(ctx)
	d.TTPRuntime.Shutdown(ctx)
	d.cancel()
	// Replication teardown comes after the servers have drained: groups
	// first (stop quorum waits and streamers), then follower hosts, then
	// the follower journals the deployment opened.
	for _, g := range d.ReplicaGroups {
		g.Close()
	}
	for _, h := range d.replicaHosts {
		h.Close()
	}
	for _, w := range d.replicaWALs {
		w.Close()
	}
}
