package deploy_test

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/evidence"
	"repro/internal/leakcheck"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/wal"
)

// replWorld is a single-shard deployment whose provider journal is
// replicated to two followers (R=3, quorum 2) under dir, restartable
// on the same disk.
type replWorld struct {
	d  *deploy.Deployment
	pw *wal.WAL
}

func leaderDir(dir string) string { return filepath.Join(dir, "provider", "wal") }
func followerDir(dir string, r int) string {
	return filepath.Join(dir, "provider", shard.DirName(0), fmt.Sprintf("replica-%02d", r))
}

func openReplWorld(t *testing.T, dir string, store storage.Store) *replWorld {
	t.Helper()
	pw, err := wal.Open(leaderDir(dir), wal.Options{})
	if err != nil {
		t.Fatalf("opening leader journal: %v", err)
	}
	d, err := deploy.New(deploy.Config{
		TestKeys:         true,
		ResponseTimeout:  2 * time.Second,
		ProviderStore:    store,
		ProviderOpts:     []core.Option{core.WithJournal(pw)},
		ProviderReplicas: 3,
		ReplicaWAL: func(s, r int) (*wal.WAL, error) {
			return wal.Open(followerDir(dir, r), wal.Options{})
		},
		ReplicaAckTimeout:     time.Second,
		ReplicaRepairInterval: 25 * time.Millisecond,
	})
	if err != nil {
		pw.Close()
		t.Fatalf("deploy.New: %v", err)
	}
	return &replWorld{d: d, pw: pw}
}

func (w *replWorld) crash() {
	w.d.Close() // also closes the follower journals the deployment opened
	w.pw.Close()
}

func (w *replWorld) upload(t *testing.T, ctx context.Context, txn, key string) {
	t.Helper()
	conn, err := w.d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := w.d.Client.Upload(ctx, conn, txn, key, []byte("payload-"+txn)); err != nil {
		t.Fatalf("upload %s: %v", txn, err)
	}
}

func waitConverged(t *testing.T, d *deploy.Deployment) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		all := true
		for _, g := range d.ReplicaGroups {
			if !g.Converged() {
				all = false
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replication groups did not converge")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// recoverOverJournal starts a fresh unreplicated deployment whose
// provider journal is the WAL at walDir — "restore the shard from this
// surviving replica's disk" — and runs provider recovery.
func recoverOverJournal(t *testing.T, ctx context.Context, walDir string, store storage.Store) (
	*deploy.Deployment, *core.RecoveryReport, func()) {
	t.Helper()
	w, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatalf("reopening journal %s: %v", walDir, err)
	}
	d, err := deploy.New(deploy.Config{
		TestKeys:      true,
		ProviderStore: store,
		ProviderOpts:  []core.Option{core.WithJournal(w)},
	})
	if err != nil {
		w.Close()
		t.Fatalf("deploy.New over %s: %v", walDir, err)
	}
	rep, err := d.Provider.Recover(ctx)
	if err != nil {
		d.Close()
		w.Close()
		t.Fatalf("recover over %s: %v", walDir, err)
	}
	return d, rep, func() { d.Close(); w.Close() }
}

// TestReplicatedUploadRecoversFromFollower is the headline durability
// claim: acked uploads replicate to the write quorum before the NRR is
// signed, so after the leader node is lost entirely, a provider
// rebuilt from a follower's journal alone still holds both halves of
// the evidence pair for every acked transaction.
func TestReplicatedUploadRecoversFromFollower(t *testing.T) {
	leakcheck.At(t)
	dir := t.TempDir()
	store := storage.NewMem(time.Now)
	ctx := context.Background()

	w := openReplWorld(t, dir, store)
	txns := []string{"txn-r-0", "txn-r-1", "txn-r-2"}
	for i, txn := range txns {
		w.upload(t, ctx, txn, fmt.Sprintf("repl/obj-%d", i))
	}
	waitConverged(t, w.d)
	w.crash()

	// The leader's disk is gone; follower 1's journal is all that's
	// left. Every acked receipt must be there.
	d2, rep, closeAll := recoverOverJournal(t, ctx, followerDir(dir, 1), store)
	defer closeAll()
	if len(rep.Transactions) != len(txns) {
		t.Fatalf("follower recovery replayed %v, want all of %v", rep.Transactions, txns)
	}
	for _, txn := range txns {
		if _, err := d2.Provider.EvidenceByKind(txn, evidence.RolePeer, evidence.KindNRO); err != nil {
			t.Fatalf("follower recovery lost NRO for %s: %v", txn, err)
		}
		if _, err := d2.Provider.EvidenceByKind(txn, evidence.RoleOwn, evidence.KindNRR); err != nil {
			t.Fatalf("follower recovery lost NRR for %s: %v", txn, err)
		}
	}
}

// TestFollowerRecoverTwiceEqualsOnce pins the restart-convergence
// property on the replicated layout: a follower's journal keeps the
// full record history even after the leader checkpointed and
// truncated its own, and recovering over that longer tail twice
// reaches exactly the state of recovering once.
func TestFollowerRecoverTwiceEqualsOnce(t *testing.T) {
	leakcheck.At(t)
	dir := t.TempDir()
	store := storage.NewMem(time.Now)
	ctx := context.Background()

	w := openReplWorld(t, dir, store)
	w.upload(t, ctx, "txn-f-0", "f/obj-0")
	w.upload(t, ctx, "txn-f-1", "f/obj-1")
	waitConverged(t, w.d)
	// The leader compacts: its journal becomes snapshot + empty tail,
	// while the followers keep the full record history — their tail now
	// extends past (is "ahead of") the leader's snapshot boundary.
	if _, err := w.d.Provider.Checkpoint(); err != nil {
		t.Fatalf("provider checkpoint: %v", err)
	}
	w.upload(t, ctx, "txn-f-tail", "f/tail")
	waitConverged(t, w.d)
	w.crash()

	fdir := followerDir(dir, 2)
	d1, rep1, close1 := recoverOverJournal(t, ctx, fdir, store)
	txns1 := append([]string(nil), rep1.Transactions...)
	evCount1 := len(d1.Provider.Archive().Transactions())
	close1()

	d2, rep2, close2 := recoverOverJournal(t, ctx, fdir, store)
	defer close2()
	if !reflect.DeepEqual(txns1, rep2.Transactions) {
		t.Fatalf("recover-twice diverged: first %v, second %v", txns1, rep2.Transactions)
	}
	if got := len(d2.Provider.Archive().Transactions()); got != evCount1 {
		t.Fatalf("recover-twice archive size %d, first pass %d", got, evCount1)
	}
	for _, txn := range []string{"txn-f-0", "txn-f-1", "txn-f-tail"} {
		if _, err := d2.Provider.EvidenceByKind(txn, evidence.RoleOwn, evidence.KindNRR); err != nil {
			t.Fatalf("second recovery lost NRR for %s: %v", txn, err)
		}
	}
	if rep1.SnapshotLSN != 0 || rep2.SnapshotLSN != 0 {
		t.Fatalf("follower recovery used a snapshot (%d/%d); its full tail should cover everything",
			rep1.SnapshotLSN, rep2.SnapshotLSN)
	}
}

// TestReplicatedShardedDeploy wires replication under a sharded engine
// (one group per shard) and checks the per-shard groups converge
// independently.
func TestReplicatedShardedDeploy(t *testing.T) {
	leakcheck.At(t)
	dir := t.TempDir()
	ctx := context.Background()
	const shards = 2

	wals := make([]*wal.WAL, shards)
	for i := range wals {
		w, err := wal.Open(filepath.Join(dir, shard.DirName(i), "wal"), wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		wals[i] = w
	}
	d, err := deploy.New(deploy.Config{
		TestKeys:       true,
		ProviderShards: shards,
		ProviderShardOpts: func(s int) []core.Option {
			return []core.Option{core.WithJournal(wals[s])}
		},
		ProviderReplicas: 3,
		ReplicaWAL: func(s, r int) (*wal.WAL, error) {
			return wal.Open(filepath.Join(dir, shard.DirName(s), fmt.Sprintf("replica-%02d", r)), wal.Options{})
		},
		ReplicaRepairInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("sharded replicated deploy: %v", err)
	}
	defer d.Close()
	if len(d.ReplicaGroups) != shards {
		t.Fatalf("got %d replication groups, want one per shard", len(d.ReplicaGroups))
	}

	pool := d.NewPool()
	defer pool.Close()
	for i := 0; i < 6; i++ {
		txn := fmt.Sprintf("txn-s-%d", i)
		if _, err := pool.Upload(ctx, txn, "s/"+txn, []byte("payload")); err != nil {
			t.Fatalf("pooled upload %s: %v", txn, err)
		}
	}
	waitConverged(t, d)
	for i, g := range d.ReplicaGroups {
		if err := g.Quorum(); err != nil {
			t.Fatalf("shard %d degraded on healthy cluster: %v", i, err)
		}
	}
}
