// Package pki implements the public-key infrastructure the paper
// assumes as ambient: §5.1 notes that MITM "can be prevented by the
// authentication — when the party gets the other's public key, they
// should authenticate the validity". This package makes that
// authentication executable: a certificate authority binds party IDs to
// public keys, a directory serves certificates, and a revocation list
// invalidates compromised identities.
//
// Certificates here are deliberately minimal (ID, key, validity window,
// CA signature over a canonical encoding) rather than full X.509: the
// paper needs only "validated binding from identity to key".
package pki

import (
	"bytes"
	"crypto/rsa"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cryptoutil"
)

// Common error conditions, distinguishable by errors.Is.
var (
	ErrUnknownIdentity = errors.New("pki: unknown identity")
	ErrBadSignature    = errors.New("pki: certificate signature invalid")
	ErrExpired         = errors.New("pki: certificate outside validity window")
	ErrRevoked         = errors.New("pki: certificate revoked")
	ErrDuplicate       = errors.New("pki: identity already enrolled")
)

// Certificate binds a party identity to an RSA public key for a
// validity window, under the CA's signature.
type Certificate struct {
	// Serial is the CA-assigned monotonically increasing serial number.
	Serial uint64
	// Subject is the party identity, e.g. "alice" or "provider-eve".
	Subject string
	// PublicKeyDER is the PKIX encoding of the subject's public key.
	PublicKeyDER []byte
	// NotBefore and NotAfter bound the validity window.
	NotBefore, NotAfter time.Time
	// Signature is the CA's signature over CanonicalBytes.
	Signature []byte
}

// PublicKey decodes the certified public key.
func (c *Certificate) PublicKey() (*rsa.PublicKey, error) {
	return cryptoutil.ParsePublicKey(c.PublicKeyDER)
}

// CanonicalBytes returns the deterministic byte string the CA signs.
func (c *Certificate) CanonicalBytes() []byte {
	var buf bytes.Buffer
	buf.WriteString("tpnr-cert-v1\x00")
	binary.Write(&buf, binary.BigEndian, c.Serial)
	binary.Write(&buf, binary.BigEndian, uint32(len(c.Subject)))
	buf.WriteString(c.Subject)
	binary.Write(&buf, binary.BigEndian, uint32(len(c.PublicKeyDER)))
	buf.Write(c.PublicKeyDER)
	binary.Write(&buf, binary.BigEndian, c.NotBefore.UnixNano())
	binary.Write(&buf, binary.BigEndian, c.NotAfter.UnixNano())
	return buf.Bytes()
}

// Clone returns a deep copy so callers cannot mutate registry state.
func (c *Certificate) Clone() *Certificate {
	d := *c
	d.PublicKeyDER = append([]byte(nil), c.PublicKeyDER...)
	d.Signature = append([]byte(nil), c.Signature...)
	return &d
}

// Authority is a certificate authority plus directory plus revocation
// list: the "third authorities certified (TAC)" role of paper §3 and
// the key-validation oracle of §5.1.
type Authority struct {
	name string
	key  cryptoutil.KeyPair

	mu         sync.RWMutex
	nextSerial uint64
	bySubject  map[string]*Certificate
	revoked    map[uint64]time.Time
}

// NewAuthority creates a CA with its own signing key.
func NewAuthority(name string, key cryptoutil.KeyPair) *Authority {
	return &Authority{
		name:       name,
		key:        key,
		nextSerial: 1,
		bySubject:  make(map[string]*Certificate),
		revoked:    make(map[uint64]time.Time),
	}
}

// Name returns the CA's name.
func (a *Authority) Name() string { return a.name }

// PublicKey returns the CA verification key that relying parties pin.
func (a *Authority) PublicKey() *rsa.PublicKey { return a.key.Public() }

// Enroll certifies subject's public key for the given validity window
// and records the certificate in the directory. Enrolling an already
// enrolled subject fails with ErrDuplicate; use Renew to rotate keys.
func (a *Authority) Enroll(subject string, pub *rsa.PublicKey, notBefore, notAfter time.Time) (*Certificate, error) {
	if subject == "" {
		return nil, fmt.Errorf("pki: empty subject")
	}
	if !notAfter.After(notBefore) {
		return nil, fmt.Errorf("pki: validity window ends (%v) before it begins (%v)", notAfter, notBefore)
	}
	der, err := cryptoutil.MarshalPublicKey(pub)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.bySubject[subject]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, subject)
	}
	cert, err := a.issueLocked(subject, der, notBefore, notAfter)
	if err != nil {
		return nil, err
	}
	a.bySubject[subject] = cert
	return cert.Clone(), nil
}

// Renew issues a fresh certificate for an already enrolled subject,
// revoking the previous one.
func (a *Authority) Renew(subject string, pub *rsa.PublicKey, notBefore, notAfter time.Time) (*Certificate, error) {
	der, err := cryptoutil.MarshalPublicKey(pub)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	old, ok := a.bySubject[subject]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownIdentity, subject)
	}
	a.revoked[old.Serial] = notBefore
	cert, err := a.issueLocked(subject, der, notBefore, notAfter)
	if err != nil {
		return nil, err
	}
	a.bySubject[subject] = cert
	return cert.Clone(), nil
}

func (a *Authority) issueLocked(subject string, der []byte, notBefore, notAfter time.Time) (*Certificate, error) {
	cert := &Certificate{
		Serial:       a.nextSerial,
		Subject:      subject,
		PublicKeyDER: der,
		NotBefore:    notBefore,
		NotAfter:     notAfter,
	}
	sig, err := cryptoutil.Sign(a.key, cert.CanonicalBytes())
	if err != nil {
		return nil, fmt.Errorf("pki: signing certificate for %q: %w", subject, err)
	}
	cert.Signature = sig
	a.nextSerial++
	return cert, nil
}

// Revoke marks a certificate invalid from t onward.
func (a *Authority) Revoke(serial uint64, t time.Time) {
	a.mu.Lock()
	a.revoked[serial] = t
	a.mu.Unlock()
}

// Lookup returns the current certificate for subject (directory query).
func (a *Authority) Lookup(subject string) (*Certificate, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	cert, ok := a.bySubject[subject]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownIdentity, subject)
	}
	return cert.Clone(), nil
}

// Subjects lists enrolled identities in sorted order.
func (a *Authority) Subjects() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.bySubject))
	for s := range a.bySubject {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Verify checks a certificate against the CA key, its validity window
// at time now, and the revocation list. This is the §5.1 "authenticate
// the validity [of the public key]" step.
func (a *Authority) Verify(cert *Certificate, now time.Time) error {
	return VerifyCertificate(a.PublicKey(), cert, now, a.isRevoked)
}

func (a *Authority) isRevoked(serial uint64, now time.Time) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	at, ok := a.revoked[serial]
	return ok && !now.Before(at)
}

// VerifyCertificate validates cert under the given CA public key at
// time now. revoked may be nil when no revocation source is available.
// Relying parties that only hold the CA key (no live directory) use
// this directly.
func VerifyCertificate(caKey *rsa.PublicKey, cert *Certificate, now time.Time, revoked func(serial uint64, now time.Time) bool) error {
	if cert == nil {
		return fmt.Errorf("pki: nil certificate")
	}
	if err := cryptoutil.Verify(caKey, cert.CanonicalBytes(), cert.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	if now.Before(cert.NotBefore) || now.After(cert.NotAfter) {
		return fmt.Errorf("%w: now=%v window=[%v,%v]", ErrExpired, now, cert.NotBefore, cert.NotAfter)
	}
	if revoked != nil && revoked(cert.Serial, now) {
		return fmt.Errorf("%w: serial %d", ErrRevoked, cert.Serial)
	}
	return nil
}

// Identity bundles everything one protocol party holds: its name, key
// pair, and CA-issued certificate.
type Identity struct {
	Name string
	Key  cryptoutil.KeyPair
	Cert *Certificate
}

// NewIdentity generates a key pair for name and enrolls it with the CA
// for the given validity window.
func NewIdentity(a *Authority, name string, key cryptoutil.KeyPair, notBefore, notAfter time.Time) (*Identity, error) {
	cert, err := a.Enroll(name, key.Public(), notBefore, notAfter)
	if err != nil {
		return nil, err
	}
	return &Identity{Name: name, Key: key, Cert: cert}, nil
}
