// Package pki implements the public-key infrastructure the paper
// assumes as ambient: §5.1 notes that MITM "can be prevented by the
// authentication — when the party gets the other's public key, they
// should authenticate the validity". This package makes that
// authentication executable: a certificate authority binds party IDs to
// public keys, a directory serves certificates, and a revocation list
// invalidates compromised identities.
//
// Certificates here are deliberately minimal (ID, key, validity window,
// CA signature over a canonical encoding) rather than full X.509: the
// paper needs only "validated binding from identity to key".
package pki

import (
	"bytes"
	"crypto/rsa"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cryptoutil"
)

// Common error conditions, distinguishable by errors.Is.
var (
	ErrUnknownIdentity = errors.New("pki: unknown identity")
	ErrBadSignature    = errors.New("pki: certificate signature invalid")
	ErrExpired         = errors.New("pki: certificate outside validity window")
	ErrRevoked         = errors.New("pki: certificate revoked")
	ErrDuplicate       = errors.New("pki: identity already enrolled")
)

// Certificate binds a party identity to a public key (of any
// registered scheme) for a validity window, under the CA's signature.
type Certificate struct {
	// Serial is the CA-assigned monotonically increasing serial number.
	Serial uint64
	// Subject is the party identity, e.g. "alice" or "provider-eve".
	Subject string
	// PublicKeyDER is the subject key's stable marshal form: PKIX DER
	// for RSA (the historical encoding), the magic envelope for
	// Ed25519. The field name predates schemes and is kept for
	// compatibility.
	PublicKeyDER []byte
	// NotBefore and NotAfter bound the validity window.
	NotBefore, NotAfter time.Time
	// Signature is the CA's signature over CanonicalBytes.
	Signature []byte
}

// Key decodes the certified public key as a scheme handle.
func (c *Certificate) Key() (cryptoutil.PublicKey, error) {
	return cryptoutil.ParseAnyPublicKey(c.PublicKeyDER)
}

// PublicKey decodes the certified public key.
//
// Deprecated: use Key — it accepts every scheme's encoding.
func (c *Certificate) PublicKey() (*rsa.PublicKey, error) {
	return cryptoutil.ParsePublicKey(c.PublicKeyDER)
}

// CanonicalBytes returns the deterministic byte string the CA signs.
func (c *Certificate) CanonicalBytes() []byte {
	var buf bytes.Buffer
	buf.WriteString("tpnr-cert-v1\x00")
	binary.Write(&buf, binary.BigEndian, c.Serial)
	binary.Write(&buf, binary.BigEndian, uint32(len(c.Subject)))
	buf.WriteString(c.Subject)
	binary.Write(&buf, binary.BigEndian, uint32(len(c.PublicKeyDER)))
	buf.Write(c.PublicKeyDER)
	binary.Write(&buf, binary.BigEndian, c.NotBefore.UnixNano())
	binary.Write(&buf, binary.BigEndian, c.NotAfter.UnixNano())
	return buf.Bytes()
}

// Clone returns a deep copy so callers cannot mutate registry state.
func (c *Certificate) Clone() *Certificate {
	d := *c
	d.PublicKeyDER = append([]byte(nil), c.PublicKeyDER...)
	d.Signature = append([]byte(nil), c.Signature...)
	return &d
}

// Authority is a certificate authority plus directory plus revocation
// list: the "third authorities certified (TAC)" role of paper §3 and
// the key-validation oracle of §5.1.
type Authority struct {
	name string
	key  cryptoutil.KeyPair

	mu         sync.RWMutex
	nextSerial uint64
	bySubject  map[string]*Certificate
	revoked    map[uint64]time.Time
}

// NewAuthority creates a CA with its own signing key.
func NewAuthority(name string, key cryptoutil.KeyPair) *Authority {
	return &Authority{
		name:       name,
		key:        key,
		nextSerial: 1,
		bySubject:  make(map[string]*Certificate),
		revoked:    make(map[uint64]time.Time),
	}
}

// Name returns the CA's name.
func (a *Authority) Name() string { return a.name }

// Key returns the CA verification key handle that relying parties pin.
func (a *Authority) Key() cryptoutil.PublicKey {
	if s := a.key.Signer(); s != nil {
		return s.Public()
	}
	return nil
}

// PublicKey returns the CA verification key that relying parties pin.
//
// Deprecated: use Key — this returns nil for a non-RSA CA.
func (a *Authority) PublicKey() *rsa.PublicKey { return a.key.Public() }

// EnrollKey certifies subject's public key handle for the given
// validity window and records the certificate in the directory.
// Enrolling an already enrolled subject fails with ErrDuplicate; use
// RenewKey to rotate keys.
func (a *Authority) EnrollKey(subject string, pub cryptoutil.PublicKey, notBefore, notAfter time.Time) (*Certificate, error) {
	if subject == "" {
		return nil, fmt.Errorf("pki: empty subject")
	}
	if pub == nil {
		return nil, fmt.Errorf("pki: nil public key for %q", subject)
	}
	if !notAfter.After(notBefore) {
		return nil, fmt.Errorf("pki: validity window ends (%v) before it begins (%v)", notAfter, notBefore)
	}
	der := pub.Marshal()
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.bySubject[subject]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, subject)
	}
	cert, err := a.issueLocked(subject, der, notBefore, notAfter)
	if err != nil {
		return nil, err
	}
	a.bySubject[subject] = cert
	return cert.Clone(), nil
}

// Enroll is EnrollKey for a raw RSA key.
//
// Deprecated: use EnrollKey with a scheme handle.
func (a *Authority) Enroll(subject string, pub *rsa.PublicKey, notBefore, notAfter time.Time) (*Certificate, error) {
	return a.EnrollKey(subject, cryptoutil.NewRSAPublicKey(pub), notBefore, notAfter)
}

// RenewKey issues a fresh certificate for an already enrolled subject,
// revoking the previous one. The new key may use a different scheme
// than the old (that is how a deployment migrates schemes in place).
func (a *Authority) RenewKey(subject string, pub cryptoutil.PublicKey, notBefore, notAfter time.Time) (*Certificate, error) {
	if pub == nil {
		return nil, fmt.Errorf("pki: nil public key for %q", subject)
	}
	der := pub.Marshal()
	a.mu.Lock()
	defer a.mu.Unlock()
	old, ok := a.bySubject[subject]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownIdentity, subject)
	}
	a.revoked[old.Serial] = notBefore
	cert, err := a.issueLocked(subject, der, notBefore, notAfter)
	if err != nil {
		return nil, err
	}
	a.bySubject[subject] = cert
	return cert.Clone(), nil
}

// Renew is RenewKey for a raw RSA key.
//
// Deprecated: use RenewKey with a scheme handle.
func (a *Authority) Renew(subject string, pub *rsa.PublicKey, notBefore, notAfter time.Time) (*Certificate, error) {
	return a.RenewKey(subject, cryptoutil.NewRSAPublicKey(pub), notBefore, notAfter)
}

func (a *Authority) issueLocked(subject string, der []byte, notBefore, notAfter time.Time) (*Certificate, error) {
	cert := &Certificate{
		Serial:       a.nextSerial,
		Subject:      subject,
		PublicKeyDER: der,
		NotBefore:    notBefore,
		NotAfter:     notAfter,
	}
	signer := a.key.Signer()
	if signer == nil {
		return nil, fmt.Errorf("pki: authority %q has no signing key", a.name)
	}
	sig, err := signer.Sign(cert.CanonicalBytes())
	if err != nil {
		return nil, fmt.Errorf("pki: signing certificate for %q: %w", subject, err)
	}
	cert.Signature = sig
	a.nextSerial++
	return cert, nil
}

// Revoke marks a certificate invalid from t onward.
func (a *Authority) Revoke(serial uint64, t time.Time) {
	a.mu.Lock()
	a.revoked[serial] = t
	a.mu.Unlock()
}

// Lookup returns the current certificate for subject (directory query).
func (a *Authority) Lookup(subject string) (*Certificate, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	cert, ok := a.bySubject[subject]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownIdentity, subject)
	}
	return cert.Clone(), nil
}

// Subjects lists enrolled identities in sorted order.
func (a *Authority) Subjects() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.bySubject))
	for s := range a.bySubject {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Verify checks a certificate against the CA key, its validity window
// at time now, and the revocation list. This is the §5.1 "authenticate
// the validity [of the public key]" step.
func (a *Authority) Verify(cert *Certificate, now time.Time) error {
	return VerifyCertificateWith(a.Key(), cert, now, a.isRevoked)
}

func (a *Authority) isRevoked(serial uint64, now time.Time) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	at, ok := a.revoked[serial]
	return ok && !now.Before(at)
}

// VerifyCertificateWith validates cert under the given CA public key
// handle at time now. revoked may be nil when no revocation source is
// available. Relying parties that only hold the CA key (no live
// directory) use this directly.
func VerifyCertificateWith(caKey cryptoutil.PublicKey, cert *Certificate, now time.Time, revoked func(serial uint64, now time.Time) bool) error {
	if cert == nil {
		return fmt.Errorf("pki: nil certificate")
	}
	if caKey == nil {
		return fmt.Errorf("%w: nil CA key", ErrBadSignature)
	}
	if err := caKey.Verify(cert.CanonicalBytes(), cert.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	if now.Before(cert.NotBefore) || now.After(cert.NotAfter) {
		return fmt.Errorf("%w: now=%v window=[%v,%v]", ErrExpired, now, cert.NotBefore, cert.NotAfter)
	}
	if revoked != nil && revoked(cert.Serial, now) {
		return fmt.Errorf("%w: serial %d", ErrRevoked, cert.Serial)
	}
	return nil
}

// VerifyCertificate is VerifyCertificateWith for a raw RSA CA key.
//
// Deprecated: use VerifyCertificateWith with a scheme handle.
func VerifyCertificate(caKey *rsa.PublicKey, cert *Certificate, now time.Time, revoked func(serial uint64, now time.Time) bool) error {
	return VerifyCertificateWith(cryptoutil.NewRSAPublicKey(caKey), cert, now, revoked)
}

// Identity bundles everything one protocol party holds: its name, key
// pair, and CA-issued certificate.
type Identity struct {
	Name string
	Key  cryptoutil.KeyPair
	Cert *Certificate
}

// NewIdentity enrolls key's public half with the CA for the given
// validity window. The key may use any registered scheme.
func NewIdentity(a *Authority, name string, key cryptoutil.KeyPair, notBefore, notAfter time.Time) (*Identity, error) {
	signer := key.Signer()
	if signer == nil {
		return nil, fmt.Errorf("pki: identity %q has no private key", name)
	}
	cert, err := a.EnrollKey(name, signer.Public(), notBefore, notAfter)
	if err != nil {
		return nil, err
	}
	return &Identity{Name: name, Key: key, Cert: cert}, nil
}
