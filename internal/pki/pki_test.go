package pki

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
)

var (
	t0 = time.Date(2010, 6, 12, 0, 0, 0, 0, time.UTC) // paper submission date
	t1 = t0.Add(365 * 24 * time.Hour)
)

func newTestCA(t *testing.T) *Authority {
	t.Helper()
	return NewAuthority("test-ca", cryptoutil.InsecureTestKey(10))
}

func TestEnrollAndVerify(t *testing.T) {
	ca := newTestCA(t)
	alice := cryptoutil.InsecureTestKey(11)
	cert, err := ca.Enroll("alice", alice.Public(), t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Subject != "alice" || cert.Serial == 0 {
		t.Fatalf("bad cert: %+v", cert)
	}
	if err := ca.Verify(cert, t0.Add(time.Hour)); err != nil {
		t.Fatalf("fresh certificate rejected: %v", err)
	}
	pub, err := cert.PublicKey()
	if err != nil {
		t.Fatal(err)
	}
	if pub.N.Cmp(alice.Public().N) != 0 {
		t.Fatal("certified key differs from enrolled key")
	}
}

func TestEnrollValidation(t *testing.T) {
	ca := newTestCA(t)
	key := cryptoutil.InsecureTestKey(11)
	if _, err := ca.Enroll("", key.Public(), t0, t1); err == nil {
		t.Error("empty subject accepted")
	}
	if _, err := ca.Enroll("x", key.Public(), t1, t0); err == nil {
		t.Error("inverted validity window accepted")
	}
	if _, err := ca.Enroll("alice", key.Public(), t0, t1); err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Enroll("alice", key.Public(), t0, t1); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate enrollment: err = %v, want ErrDuplicate", err)
	}
}

func TestVerifyRejectsForgedCertificate(t *testing.T) {
	ca := newTestCA(t)
	cert, err := ca.Enroll("alice", cryptoutil.InsecureTestKey(11).Public(), t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	// An attacker substitutes their own key but cannot re-sign.
	forged := cert.Clone()
	der, _ := cryptoutil.MarshalPublicKey(cryptoutil.InsecureTestKey(12).Public())
	forged.PublicKeyDER = der
	if err := ca.Verify(forged, t0.Add(time.Hour)); !errors.Is(err, ErrBadSignature) {
		t.Errorf("forged cert: err = %v, want ErrBadSignature", err)
	}
	// Subject substitution must also fail.
	forged2 := cert.Clone()
	forged2.Subject = "mallory"
	if err := ca.Verify(forged2, t0.Add(time.Hour)); !errors.Is(err, ErrBadSignature) {
		t.Errorf("renamed cert: err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyWindow(t *testing.T) {
	ca := newTestCA(t)
	cert, err := ca.Enroll("alice", cryptoutil.InsecureTestKey(11).Public(), t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Verify(cert, t0.Add(-time.Second)); !errors.Is(err, ErrExpired) {
		t.Errorf("before window: err = %v, want ErrExpired", err)
	}
	if err := ca.Verify(cert, t1.Add(time.Second)); !errors.Is(err, ErrExpired) {
		t.Errorf("after window: err = %v, want ErrExpired", err)
	}
}

func TestRevocation(t *testing.T) {
	ca := newTestCA(t)
	cert, err := ca.Enroll("alice", cryptoutil.InsecureTestKey(11).Public(), t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	revokeAt := t0.Add(10 * 24 * time.Hour)
	ca.Revoke(cert.Serial, revokeAt)
	if err := ca.Verify(cert, revokeAt.Add(-time.Hour)); err != nil {
		t.Errorf("before revocation: %v", err)
	}
	if err := ca.Verify(cert, revokeAt.Add(time.Hour)); !errors.Is(err, ErrRevoked) {
		t.Errorf("after revocation: err = %v, want ErrRevoked", err)
	}
}

func TestRenewRotatesKeyAndRevokesOld(t *testing.T) {
	ca := newTestCA(t)
	old, err := ca.Enroll("alice", cryptoutil.InsecureTestKey(11).Public(), t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	rotateAt := t0.Add(24 * time.Hour)
	renewed, err := ca.Renew("alice", cryptoutil.InsecureTestKey(12).Public(), rotateAt, t1)
	if err != nil {
		t.Fatal(err)
	}
	if renewed.Serial == old.Serial {
		t.Error("renewal reused the serial")
	}
	if err := ca.Verify(old, rotateAt.Add(time.Hour)); !errors.Is(err, ErrRevoked) {
		t.Errorf("old cert after renew: err = %v, want ErrRevoked", err)
	}
	if err := ca.Verify(renewed, rotateAt.Add(time.Hour)); err != nil {
		t.Errorf("renewed cert rejected: %v", err)
	}
	if _, err := ca.Renew("nobody", cryptoutil.InsecureTestKey(12).Public(), t0, t1); !errors.Is(err, ErrUnknownIdentity) {
		t.Errorf("renew unknown: err = %v, want ErrUnknownIdentity", err)
	}
}

func TestLookupAndSubjects(t *testing.T) {
	ca := newTestCA(t)
	for i, name := range []string{"carol", "alice", "bob"} {
		if _, err := ca.Enroll(name, cryptoutil.InsecureTestKey(11+i).Public(), t0, t1); err != nil {
			t.Fatal(err)
		}
	}
	got := ca.Subjects()
	want := []string{"alice", "bob", "carol"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Subjects = %v, want %v", got, want)
		}
	}
	cert, err := ca.Lookup("bob")
	if err != nil {
		t.Fatal(err)
	}
	if cert.Subject != "bob" {
		t.Fatalf("Lookup returned %q", cert.Subject)
	}
	if _, err := ca.Lookup("mallory"); !errors.Is(err, ErrUnknownIdentity) {
		t.Errorf("lookup unknown: err = %v, want ErrUnknownIdentity", err)
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	ca := newTestCA(t)
	if _, err := ca.Enroll("alice", cryptoutil.InsecureTestKey(11).Public(), t0, t1); err != nil {
		t.Fatal(err)
	}
	c1, _ := ca.Lookup("alice")
	c1.Signature[0] ^= 0xff
	c2, _ := ca.Lookup("alice")
	if err := ca.Verify(c2, t0.Add(time.Hour)); err != nil {
		t.Fatalf("mutating a looked-up cert corrupted the registry: %v", err)
	}
}

func TestVerifyCertificateNil(t *testing.T) {
	ca := newTestCA(t)
	if err := ca.Verify(nil, t0); err == nil {
		t.Fatal("nil certificate accepted")
	}
}

func TestNewIdentity(t *testing.T) {
	ca := newTestCA(t)
	id, err := NewIdentity(ca, "alice", cryptoutil.InsecureTestKey(11), t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	if id.Name != "alice" || id.Cert == nil {
		t.Fatalf("bad identity: %+v", id)
	}
	if err := ca.Verify(id.Cert, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
}
