package ttp_test

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/deploy"
	"repro/internal/evidence"
	"repro/internal/pki"
)

func newDeploy(t *testing.T) *deploy.Deployment {
	t.Helper()
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// rawParty enrolls a fresh identity with the deployment CA and returns
// raw message-building plumbing for it, so tests can craft resolve
// requests the Client API would never send.
func rawParty(t *testing.T, d *deploy.Deployment, name string, keySlot int) *core.TTPParty {
	t.Helper()
	now := time.Now()
	id, err := pki.NewIdentity(d.CA, name, cryptoutil.InsecureTestKey(keySlot), now.Add(-time.Hour), now.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewTTPParty(
		core.WithIdentity(id),
		core.WithCAKey(d.CA.PublicKey()),
		core.WithDirectory(core.Directory(d.CA.Lookup)),
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// buildResolve crafts a resolve request from the raw party toward the
// TTP, embedding the given payload bytes.
func buildResolve(t *testing.T, d *deploy.Deployment, p *core.TTPParty, txn string, payload []byte) []byte {
	t.Helper()
	ttpKey, err := p.PeerKey(deploy.TTPName)
	if err != nil {
		t.Fatal(err)
	}
	h := p.NewHeader(evidence.KindResolveRequest, txn, deploy.TTPName, deploy.TTPName, p.NextSeq(txn))
	h.Note = "test anomaly report"
	h.SetDigests(nil)
	msg, _, err := p.BuildMessage(h, payload, ttpKey)
	if err != nil {
		t.Fatal(err)
	}
	return msg.Encode()
}

// decodeStatement opens the TTP's response at the raw party.
func decodeStatement(t *testing.T, p *core.TTPParty, raw []byte) *evidence.Header {
	t.Helper()
	if raw == nil {
		t.Fatal("TTP stayed silent, expected a statement")
	}
	m, err := core.DecodeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := p.CheckInbound(m)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// ownEvidence builds evidence the raw party legitimately signed, for a
// given transaction and recipient.
func ownEvidence(t *testing.T, p *core.TTPParty, txn, recipient string) *evidence.Evidence {
	t.Helper()
	recipKey, err := p.PeerKey(recipient)
	if err != nil {
		t.Fatal(err)
	}
	h := p.NewHeader(evidence.KindNRO, txn, recipient, deploy.TTPName, p.NextSeq(txn))
	h.SetDigests([]byte("claimed data"))
	_, ev, err := p.BuildMessage(h, nil, recipKey)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestResolveWithoutEvidenceRejected(t *testing.T) {
	d := newDeploy(t)
	mallory := rawParty(t, d, "mallory", 40)
	raw, _ := d.TTPServer.Handle(buildResolve(t, d, mallory, "txn-x", nil))
	h := decodeStatement(t, mallory, raw)
	if !strings.Contains(h.Note, "no evidence") {
		t.Fatalf("note = %q", h.Note)
	}
}

func TestResolveMalformedEvidenceRejected(t *testing.T) {
	d := newDeploy(t)
	mallory := rawParty(t, d, "mallory2", 41)
	raw, _ := d.TTPServer.Handle(buildResolve(t, d, mallory, "txn-y", []byte("not evidence")))
	h := decodeStatement(t, mallory, raw)
	if !strings.Contains(h.Note, "malformed") {
		t.Fatalf("note = %q", h.Note)
	}
}

func TestResolveMismatchedClaimRejected(t *testing.T) {
	d := newDeploy(t)
	mallory := rawParty(t, d, "mallory3", 42)
	// Evidence for a DIFFERENT transaction than the claim.
	ev := ownEvidence(t, mallory, "txn-other", deploy.ProviderName)
	raw, _ := d.TTPServer.Handle(buildResolve(t, d, mallory, "txn-claimed", ev.Encode()))
	h := decodeStatement(t, mallory, raw)
	if !strings.Contains(h.Note, "does not match claim") {
		t.Fatalf("note = %q", h.Note)
	}
}

func TestResolveStolenEvidenceRejected(t *testing.T) {
	d := newDeploy(t)
	mallory := rawParty(t, d, "mallory4", 43)
	victim := rawParty(t, d, "victim", 44)
	// Mallory submits the VICTIM's evidence under her own resolve
	// request: the claimant/evidence-signer mismatch must be caught.
	stolen := ownEvidence(t, victim, "txn-stolen", deploy.ProviderName)
	raw, _ := d.TTPServer.Handle(buildResolve(t, d, mallory, "txn-stolen", stolen.Encode()))
	h := decodeStatement(t, mallory, raw)
	if !strings.Contains(h.Note, "does not match claim") {
		t.Fatalf("note = %q", h.Note)
	}
}

func TestResolveTamperedEvidenceRejected(t *testing.T) {
	d := newDeploy(t)
	mallory := rawParty(t, d, "mallory5", 45)
	ev := ownEvidence(t, mallory, "txn-t", deploy.ProviderName)
	// Mutate the signed digest: signature must fail at the TTP.
	ev.Header.DataMD5 = cryptoutil.Sum(cryptoutil.MD5, []byte("forged"))
	raw, _ := d.TTPServer.Handle(buildResolve(t, d, mallory, "txn-t", ev.Encode()))
	h := decodeStatement(t, mallory, raw)
	if !strings.Contains(h.Note, "does not verify") {
		t.Fatalf("note = %q", h.Note)
	}
}

func TestResolveUnreachablePeer(t *testing.T) {
	d := newDeploy(t)
	mallory := rawParty(t, d, "mallory6", 46)
	// ghost-provider has a certificate (so the TTP considers it) but no
	// listener anywhere.
	rawParty(t, d, "ghost-provider", 47)
	ev := ownEvidence(t, mallory, "txn-u", "ghost-provider")
	raw, _ := d.TTPServer.Handle(buildResolve(t, d, mallory, "txn-u", ev.Encode()))
	h := decodeStatement(t, mallory, raw)
	if h.Note != "peer-unreachable" {
		t.Fatalf("note = %q", h.Note)
	}
}

func TestWrongKindRejected(t *testing.T) {
	d := newDeploy(t)
	mallory := rawParty(t, d, "mallory7", 48)
	ttpKey, err := mallory.PeerKey(deploy.TTPName)
	if err != nil {
		t.Fatal(err)
	}
	h := mallory.NewHeader(evidence.KindNRO, "txn-k", deploy.TTPName, deploy.TTPName, mallory.NextSeq("txn-k"))
	h.SetDigests(nil)
	msg, _, err := mallory.BuildMessage(h, nil, ttpKey)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := d.TTPServer.Handle(msg.Encode())
	rh := decodeStatement(t, mallory, raw)
	if !strings.Contains(rh.Note, "unsupported request kind") {
		t.Fatalf("note = %q", rh.Note)
	}
}

func TestGarbageSilentlyDropped(t *testing.T) {
	d := newDeploy(t)
	if got, _ := d.TTPServer.Handle([]byte("complete garbage")); got != nil {
		t.Fatalf("TTP answered garbage with %d bytes", len(got))
	}
}

func TestUnenrolledSenderDropped(t *testing.T) {
	d := newDeploy(t)
	// An identity signed by a DIFFERENT CA: the TTP must not answer.
	otherCA := pki.NewAuthority("evil-ca", cryptoutil.InsecureTestKey(49))
	now := time.Now()
	id, err := pki.NewIdentity(otherCA, "outsider", cryptoutil.InsecureTestKey(50), now.Add(-time.Hour), now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// The outsider's own view of the world includes a "ttp" certified
	// by the evil CA; the real TTP still must not answer.
	if _, err := pki.NewIdentity(otherCA, deploy.TTPName, cryptoutil.InsecureTestKey(51), now.Add(-time.Hour), now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	p, err := core.NewTTPParty(
		core.WithIdentity(id),
		core.WithCAKey(otherCA.PublicKey()),
		core.WithDirectory(core.Directory(otherCA.Lookup)),
	)
	if err != nil {
		t.Fatal(err)
	}
	msg := buildResolve(t, d, p, "txn-o", nil)
	if got, _ := d.TTPServer.Handle(msg); got != nil {
		t.Fatal("TTP answered a sender from a foreign CA")
	}
}

// TestTTPHandleRawNeverPanics: random garbage at the TTP entry point
// must neither panic nor elicit a response.
func TestTTPHandleRawNeverPanics(t *testing.T) {
	d := newDeploy(t)
	f := func(raw []byte) bool {
		reply, _ := d.TTPServer.Handle(raw)
		return reply == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
