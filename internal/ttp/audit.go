package ttp

import (
	"context"
	"fmt"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/evidence"
	"repro/internal/obs"
)

// The TTP as public auditor (DESIGN.md §14). Resolve is the TTP's
// only window into a session, but it is enough: the provider's NRR
// relayed during Resolve carries the storage-dwell root commitment,
// so from then on the TTP can challenge the provider on the client's
// behalf — a neutral party generating conviction-grade audit evidence
// without ever holding the data. ttpd's -audit-interval loop drives
// AuditStored.

// TTP-labeled audit metrics, following the per-party convention of
// the core package.
var (
	ttpAuditChallenges = obs.Default().Counter(obs.Labeled("audit_challenges_total", "party", "ttp"))
	ttpAuditFailures   = obs.Default().Counter(obs.Labeled("audit_failures_total", "party", "ttp"))
)

// auditTarget is one session the TTP can challenge: who to dial and
// what commitment to verify against.
type auditTarget struct {
	provider  string
	objectKey string
	objectLen uint64
	// note is the relayed NRR's root note (audit.RootNote).
	note string
}

// recordAuditable inspects evidence relayed through a resolve and, if
// it is an NRR with a storage-dwell commitment, remembers the session
// as a future audit target.
func (s *Server) recordAuditable(txn string, relayed []byte) {
	if len(relayed) == 0 {
		return
	}
	ev, err := evidence.Decode(relayed)
	if err != nil || ev.Header.Kind != evidence.KindNRR {
		return
	}
	if _, _, err := audit.ParseRootNote(ev.Header.Note); err != nil {
		return
	}
	s.targetsMu.Lock()
	s.targets[txn] = auditTarget{
		provider:  ev.Header.SenderID,
		objectKey: ev.Header.ObjectKey,
		objectLen: ev.Header.ObjectLen,
		note:      ev.Header.Note,
	}
	s.targetsMu.Unlock()
}

// AuditableTxns lists the sessions the TTP currently knows how to
// audit.
func (s *Server) AuditableTxns() []string {
	s.targetsMu.Lock()
	defer s.targetsMu.Unlock()
	out := make([]string, 0, len(s.targets))
	for txn := range s.targets {
		out = append(out, txn)
	}
	return out
}

// AuditStored sweeps every known audit target once, issuing an
// n-leaf challenge to each provider and verifying the response
// against the relayed commitment. It returns how many sessions were
// audited successfully and how many failed (unreachable provider,
// missing or invalid response) — each failure leaves the TTP holding
// a journaled unanswered challenge, the same conviction material a
// client's failed audit produces.
func (s *Server) AuditStored(ctx context.Context, n int) (audited, failed int) {
	s.targetsMu.Lock()
	targets := make(map[string]auditTarget, len(s.targets))
	for txn, t := range s.targets {
		targets[txn] = t
	}
	s.targetsMu.Unlock()
	for txn, t := range targets {
		if err := s.auditOne(ctx, txn, t, n); err != nil {
			ttpAuditFailures.Inc()
			s.auditAppend("audit-failed", txn, err.Error())
			failed++
			continue
		}
		audited++
	}
	return audited, failed
}

// auditOne runs one challenge-response round against t's provider.
// The challenge is journaled before the dial — a provider that never
// answers leaves the TTP with the same durable claim a client keeps.
func (s *Server) auditOne(ctx context.Context, txn string, t auditTarget, n int) error {
	root, chunkSize, err := audit.ParseRootNote(t.note)
	if err != nil {
		return fmt.Errorf("ttp: target %s has no commitment: %w", txn, err)
	}
	ch, err := audit.NewChallenge(txn, audit.LeafCountFor(t.objectLen, chunkSize), n)
	if err != nil {
		return fmt.Errorf("ttp: building challenge for %s: %w", txn, err)
	}
	peerKey, err := s.PeerPublicKey(t.provider)
	if err != nil {
		return err
	}
	fh := s.NewHeader(evidence.KindAuditChallenge, txn, t.provider, s.ID(), s.NextSeq(txn))
	fh.ObjectKey = t.objectKey
	fh.Note = ch.Note()
	fh.SetDigests(nil)
	msg, own, err := s.BuildMessageFor(fh, nil, peerKey)
	if err != nil {
		return err
	}
	if err := s.PutEvidence(txn, evidence.RoleOwn, own); err != nil {
		return err
	}
	ttpAuditChallenges.Inc()

	cctx, cancel := context.WithTimeout(ctx, s.ResponseTimeout())
	defer cancel()
	conn, err := s.dial(cctx, t.provider)
	if err != nil {
		return fmt.Errorf("ttp: dialing %s for audit: %w", t.provider, err)
	}
	defer conn.Close()
	if err := conn.Send(msg.Encode()); err != nil {
		return fmt.Errorf("ttp: sending audit challenge: %w", err)
	}
	raw, err := s.RecvTimeout(cctx, conn)
	if err != nil {
		return fmt.Errorf("ttp: provider silent on audit of %s: %w", txn, err)
	}
	rm, err := core.DecodeMessage(raw)
	if err != nil {
		return fmt.Errorf("ttp: audit reply malformed: %w", err)
	}
	rh, rev, err := s.CheckInbound(rm)
	if err != nil {
		return err
	}
	if rh.Kind != evidence.KindAuditResponse || rh.TxnID != txn || rh.SenderID != t.provider {
		return fmt.Errorf("ttp: unexpected audit reply %s for %s from %s", rh.Kind, rh.TxnID, rh.SenderID)
	}
	resp, err := audit.ParseResponseNote(rh.Note)
	if err != nil {
		return fmt.Errorf("ttp: audit response malformed: %w", err)
	}
	if err := resp.Verify(peerKey, ch, root); err != nil {
		return fmt.Errorf("ttp: audit of %s failed verification: %w", txn, err)
	}
	if err := s.PutEvidence(txn, evidence.RolePeer, rev); err != nil {
		return err
	}
	s.auditAppend("audit", txn, fmt.Sprintf("provider %s proved %d leaves", t.provider, len(ch.Indices)))
	return nil
}
