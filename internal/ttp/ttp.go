// Package ttp implements the Trusted Third Party of the TPNR protocol
// (paper §4.3, Fig. 6c). The TTP is off-line in the Normal and Abort
// modes and only participates in Resolve: a party that did not receive
// its counterparty's evidence before the time limit sends the TTP the
// transaction ID, its own evidence, and a report of anomalies; the TTP
// verifies genuineness and consistency, forwards a timestamped Resolve
// query to the peer, and either relays the peer's evidence back or —
// when the peer stays silent past the deadline — issues a signed
// statement that "this session is failed and [the peer] did not
// respond".
//
// The TTP never stores or forwards bulk data: "Normally the size of
// the data set is very large, which is not feasible to be stored
// and/or forwarded by the TTP" (§4.3). Only evidence moves through it.
package ttp

import (
	"context"
	"errors"
	"sync"

	"repro/internal/auditlog"
	"repro/internal/core"
	"repro/internal/evidence"
	"repro/internal/faultpoint"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// Faultpoints at the TTP's crash-sensitive instants; the chaos suite
// kills the daemon at each and asserts the claimant still converges.
var (
	fpResolveAfterOpen  = faultpoint.Register("ttp.resolve.after-open-before-query")
	fpResolveAfterClose = faultpoint.Register("ttp.resolve.after-close-before-reply")
	// fpQueryPeerBlackhole simulates an unreachable counterparty (armed
	// with an error) or crashes the TTP mid-query (armed with Kill): the
	// resolve must still conclude with a signed statement.
	fpQueryPeerBlackhole = faultpoint.Register("ttp.resolve.query-peer-blackhole")
)

// Dialer connects the TTP to a named party for the in-line query,
// honoring the context while connecting.
type Dialer func(ctx context.Context, partyID string) (transport.Conn, error)

// Server is the TTP daemon. It satisfies core.Handler, so a
// core.Server can front it for concurrent resolve traffic.
type Server struct {
	*partyAlias
	dial Dialer

	// audit, when set, receives a hash-chained record of every resolve —
	// the material the TTP shows when its own conduct is questioned.
	auditMu sync.Mutex
	audit   *auditlog.Log

	// targets remembers sessions whose relayed NRR carried a
	// storage-dwell commitment; the ttpd -audit-interval sweep
	// (AuditStored) challenges them as a public auditor.
	targetsMu sync.Mutex
	targets   map[string]auditTarget
}

// partyAlias re-exports the shared core plumbing under this package.
// The TTP is a protocol party like the others: it has an identity, a
// replay guard and an evidence archive (it must retain what passed
// through it for later disputes).
type partyAlias = core.TTPParty

// New constructs a TTP server from functional options. dial is used to
// reach the counterparty of a resolve request.
func New(dial Dialer, opts ...core.Option) (*Server, error) {
	p, err := core.NewTTPParty(opts...)
	if err != nil {
		return nil, err
	}
	return &Server{partyAlias: p, dial: dial, targets: make(map[string]auditTarget)}, nil
}

// NewFromOptions constructs a TTP server from a legacy core.Options
// struct.
//
// Deprecated: use New with functional options.
func NewFromOptions(o core.Options, dial Dialer) (*Server, error) {
	return New(dial, core.WithOptions(o))
}

// SetAuditLog attaches a tamper-evident event log; every subsequent
// resolve event is appended to it.
func (s *Server) SetAuditLog(l *auditlog.Log) {
	s.auditMu.Lock()
	s.audit = l
	s.auditMu.Unlock()
}

// auditAppend records an event if an audit log is attached.
func (s *Server) auditAppend(kind, txn, detail string) {
	s.auditMu.Lock()
	l := s.audit
	s.auditMu.Unlock()
	if l != nil {
		l.Append(kind, txn, detail)
	}
}

// Serve handles resolve traffic on one connection until it closes or
// ctx terminates (surfacing core.ErrCancelled).
func (s *Server) Serve(ctx context.Context, conn transport.Conn) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close() // unblock the pending Recv
		case <-done:
		}
	}()
	for {
		raw, err := conn.Recv()
		if err != nil {
			if cerr := core.CheckContext(ctx); cerr != nil {
				return cerr
			}
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		reply, _ := s.Handle(raw)
		transport.Recycle(raw) // Handle copied what it kept
		if reply == nil {
			continue
		}
		if err := conn.Send(reply); err != nil {
			if cerr := core.CheckContext(ctx); cerr != nil {
				return cerr
			}
			return err
		}
	}
}

// Handle processes one encoded resolve request and returns the encoded
// response for the requester (nil for unverifiable garbage, which gets
// no reply) plus the handling error. The in-line peer query is bounded
// by the party's response timeout rather than a caller context — the
// TTP answers the claimant in bounded time regardless of who embeds
// it.
func (s *Server) Handle(raw []byte) ([]byte, error) {
	s.Counters().Inc(metrics.MsgsRecv, 1)
	m, err := core.DecodeMessage(raw)
	if err != nil {
		return nil, err
	}
	resp, err := s.handleResolve(m)
	if resp == nil {
		return nil, err
	}
	enc := resp.Encode()
	s.Counters().Inc(metrics.MsgsSent, 1)
	s.Counters().Inc(metrics.BytesSent, int64(len(enc)))
	return enc, err
}

// HandleRaw processes one encoded resolve request and returns the
// encoded response, swallowing the handling error.
//
// Deprecated: use Handle.
func (s *Server) HandleRaw(raw []byte) []byte {
	reply, _ := s.Handle(raw)
	return reply
}

// Compile-time check: the TTP daemon plugs into the concurrent
// core.Server runtime.
var _ core.Handler = (*Server)(nil)

func (s *Server) handleResolve(m *core.Message) (*core.Message, error) {
	h, ev, err := s.CheckInbound(m)
	if err != nil {
		return nil, err
	}
	if h.Kind != evidence.KindResolveRequest {
		return s.statement(h, "unsupported request kind "+h.Kind.String(), nil)
	}
	// Verify the genuineness of the claim: the embedded original
	// evidence must verify under the claimant's key and belong to the
	// claimed transaction.
	if len(m.Payload) == 0 {
		return s.statement(h, "resolve request carries no evidence", nil)
	}
	claimed, err := evidence.Decode(m.Payload)
	if err != nil {
		return s.statement(h, "resolve evidence malformed", nil)
	}
	claimantKey, err := s.PeerPublicKey(h.SenderID)
	if err != nil {
		return nil, err
	}
	if claimed.Header.SenderID != h.SenderID || claimed.Header.TxnID != h.TxnID {
		return s.statement(h, "resolve evidence does not match claim", nil)
	}
	// Claimants resubmit the same original evidence on every resolve
	// retry; the cache turns the repeat RSA verifies into hash lookups.
	if err := claimed.VerifyCachedWith(claimantKey, s.VerifyCache()); err != nil {
		s.Counters().Inc(metrics.AuthFailures, 1)
		return s.statement(h, "resolve evidence does not verify", nil)
	}
	// Journal the accepted claim and the opened resolve before the peer
	// query: if the TTP dies mid-resolve, the restarted daemon knows the
	// claimant is owed a statement and holds the evidence to answer a
	// retry.
	if err := s.PutEvidence(h.TxnID, evidence.RolePeer, ev); err != nil {
		return nil, err // no reply; the claimant retries
	}
	if err := s.JournalResolveOpen(h.TxnID, "claim by "+h.SenderID); err != nil {
		return nil, err
	}
	s.Counters().Inc(metrics.Resolves, 1)
	s.auditAppend("resolve-open", h.TxnID, "claim by "+h.SenderID)
	faultpoint.Hit(fpResolveAfterOpen)

	// Identify the counterparty from the claimant's evidence.
	peerID := claimed.Header.RecipientID
	peerReply, peerEv, note := s.queryPeer(h, peerID, m.Payload)
	if peerReply == nil {
		// Peer unresponsive: issue the signed failure statement.
		return s.statement(h, note, nil)
	}
	return s.statement(h, note, peerEv)
}

// queryPeer forwards a timestamped resolve query to the counterparty
// and awaits its answer. Returns the raw reply (nil on timeout or
// failure), the peer's relayed evidence bytes, and the outcome note.
func (s *Server) queryPeer(h *evidence.Header, peerID string, claimPayload []byte) ([]byte, []byte, string) {
	// The dial and the peer wait are bounded by the response timeout,
	// not a caller context: §4.3 requires the TTP to answer the
	// claimant in bounded time.
	ctx, cancel := context.WithTimeout(context.Background(), s.ResponseTimeout())
	defer cancel()
	if err := faultpoint.HitErr(fpQueryPeerBlackhole); err != nil {
		return nil, nil, "peer-unreachable"
	}
	conn, err := s.dial(ctx, peerID)
	if err != nil {
		return nil, nil, "peer-unreachable"
	}
	defer conn.Close()

	peerKey, err := s.PeerPublicKey(peerID)
	if err != nil {
		return nil, nil, "peer-unknown"
	}
	fh := s.NewHeader(evidence.KindResolveRequest, h.TxnID, peerID, s.ID(), s.NextSeq(h.TxnID))
	fh.Note = "resolve query on behalf of " + h.SenderID
	fh.SetDigests(nil)
	fmsg, _, err := s.BuildMessageFor(fh, claimPayload, peerKey)
	if err != nil {
		return nil, nil, "internal-error"
	}
	if err := conn.Send(fmsg.Encode()); err != nil {
		return nil, nil, "peer-unreachable"
	}
	s.Counters().Inc(metrics.TTPMsgs, 1)

	raw, err := s.RecvTimeout(ctx, conn)
	if err != nil {
		s.Counters().Inc(metrics.Disputes, 1)
		return nil, nil, "peer-unresponsive"
	}
	rm, err := core.DecodeMessage(raw)
	if err != nil {
		return nil, nil, "peer-malformed-reply"
	}
	rh, rev, err := s.CheckInbound(rm)
	if err != nil || rh.Kind != evidence.KindResolveResponse {
		return nil, nil, "peer-invalid-reply"
	}
	if err := s.PutEvidence(h.TxnID, evidence.RolePeer, rev); err != nil {
		return nil, nil, "internal-error"
	}
	// A relayed NRR carrying a storage-dwell commitment makes this
	// session auditable by the TTP from now on (DESIGN.md §14).
	s.recordAuditable(h.TxnID, rm.Payload)
	// Relay the peer's embedded evidence (its NRR) onward; the peer's
	// action note travels with the statement.
	return raw, rm.Payload, rh.Note
}

// statement builds the TTP's signed response to the requester,
// optionally relaying peer evidence in the payload.
func (s *Server) statement(h *evidence.Header, note string, relayed []byte) (*core.Message, error) {
	requesterKey, err := s.PeerPublicKey(h.SenderID)
	if err != nil {
		return nil, err
	}
	rh := s.NewHeader(evidence.KindResolveResponse, h.TxnID, h.SenderID, s.ID(), s.BumpSeqTo(h.TxnID, h.Seq))
	rh.Note = note
	rh.SetDigests(nil)
	msg, own, err := s.BuildMessageFor(rh, relayed, requesterKey)
	if err != nil {
		return nil, err
	}
	// Journal the statement and the close before replying: once the
	// claimant holds the statement the TTP must be able to reproduce it.
	if err := s.PutEvidence(h.TxnID, evidence.RoleOwn, own); err != nil {
		return nil, err
	}
	if err := s.JournalResolveClosed(h.TxnID, note); err != nil {
		return nil, err
	}
	s.auditAppend("resolve-close", h.TxnID, note)
	faultpoint.Hit(fpResolveAfterClose)
	return msg, nil
}
