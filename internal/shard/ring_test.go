package shard

import (
	"fmt"
	"testing"
)

// The ring hash is pinned: these route targets were computed once and
// must never change, or a restarted provider looks for sessions in the
// wrong per-shard WAL. If this test fails the hash or vnode labels
// changed — that is a data-loss bug, not a test to update.
func TestRingPinnedRouting(t *testing.T) {
	r := New(4)
	got := make(map[string]int)
	for _, txn := range []string{"txn-000001", "txn-000002", "txn-abc", "d6ae7bl2"} {
		got[txn] = r.Shard(txn)
	}
	// Golden values from the first run of this implementation.
	want := map[string]int{"txn-000001": 0, "txn-000002": 0, "txn-abc": 1, "d6ae7bl2": 2}
	for txn, w := range want {
		if got[txn] != w {
			t.Errorf("Shard(%q) = %d, want pinned %d", txn, got[txn], w)
		}
	}
}

func TestRingDeterministicAcrossInstances(t *testing.T) {
	a, b := New(8), New(8)
	for i := 0; i < 10000; i++ {
		txn := fmt.Sprintf("txn-%08d", i)
		if a.Shard(txn) != b.Shard(txn) {
			t.Fatalf("txn %q routes to %d on one ring, %d on another", txn, a.Shard(txn), b.Shard(txn))
		}
	}
}

func TestRingBounds(t *testing.T) {
	for _, n := range []int{0, 1, 2, 4, 8} {
		r := New(n)
		wantN := n
		if wantN < 1 {
			wantN = 1
		}
		if r.N() != wantN {
			t.Fatalf("New(%d).N() = %d, want %d", n, r.N(), wantN)
		}
		for i := 0; i < 1000; i++ {
			s := r.Shard(fmt.Sprintf("txn-%06d", i))
			if s < 0 || s >= wantN {
				t.Fatalf("n=%d: shard %d out of range", n, s)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	const keys = 50000
	r := New(8)
	counts := make([]int, 8)
	for i := 0; i < keys; i++ {
		counts[r.Shard(fmt.Sprintf("txn-%08d", i))]++
	}
	mean := keys / 8
	for s, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Errorf("shard %d holds %d of %d keys (mean %d): ring badly unbalanced", s, c, keys, mean)
		}
	}
}

// Growing the ring should move roughly 1/(n+1) of the keys, not
// reshuffle everything — the property that makes consistent hashing
// worth its ring.
func TestRingConsistencyUnderGrowth(t *testing.T) {
	const keys = 20000
	r4, r5 := New(4), New(5)
	moved := 0
	for i := 0; i < keys; i++ {
		txn := fmt.Sprintf("txn-%08d", i)
		if r4.Shard(txn) != r5.Shard(txn) {
			moved++
		}
	}
	// Expect ~20% movement; fail above 40%.
	if moved > keys*2/5 {
		t.Errorf("growing 4→5 shards moved %d/%d keys; consistent hashing should move ~%d", moved, keys, keys/5)
	}
}

func BenchmarkRingShard(b *testing.B) {
	r := New(8)
	txn := "txn-00012345"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Shard(txn)
	}
}
