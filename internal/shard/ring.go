// Package shard provides deterministic consistent-hash routing of
// transaction IDs to provider shards.
//
// The ring is built from virtual nodes: each shard contributes
// vnodesPerShard points on a 64-bit hash circle, and a txn ID routes
// to the shard owning the first point at or after the txn's own hash.
// The hash is pinned to FNV-64a over fixed label strings — not
// Go's runtime map hash or anything seeded per-process — so the same
// txn routes to the same shard across restarts, across binaries, and
// across the client-side SessionPool and the server-side engine. That
// stability is load-bearing: a provider restart must find each
// session's evidence in the same per-shard WAL that wrote it.
package shard

import (
	"fmt"
	"sort"
)

// vnodesPerShard is the number of points each shard contributes to the
// ring. 128 keeps the max/min shard load ratio under ~1.25 for random
// txn IDs while the ring still fits in a few KB for 8 shards.
const vnodesPerShard = 128

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// ringHash is the pinned ring hash: FNV-64a followed by a 64-bit
// avalanche finalizer. Inlined rather than importing hash/fnv so the
// zero-allocation property (no hash.Hash64 boxing) and the exact
// algorithm are both locked down in this file. The finalizer matters:
// raw FNV over short, similar strings ("tpnr/shard-3/vnode-17") leaves
// the high bits — the bits that order points on the circle — poorly
// mixed, which clusters vnodes and unbalances the ring badly.
func ringHash(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	// fmix64 finalizer (MurmurHash3 constants).
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Ring maps transaction IDs onto n shards. Immutable after New; safe
// for concurrent use.
type Ring struct {
	n      int
	points []point // sorted by hash
}

type point struct {
	hash  uint64
	shard int
}

// New builds a ring over n shards. n < 1 is treated as 1 so a
// zero-configured caller degenerates to the unsharded layout.
func New(n int) *Ring {
	if n < 1 {
		n = 1
	}
	r := &Ring{n: n, points: make([]point, 0, n*vnodesPerShard)}
	for s := 0; s < n; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			// The vnode label format is part of the on-disk contract:
			// changing it remaps sessions away from their WALs.
			label := fmt.Sprintf("tpnr/shard-%d/vnode-%d", s, v)
			r.points = append(r.points, point{hash: ringHash(label), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// N reports the shard count.
func (r *Ring) N() int { return r.n }

// DirName is the canonical per-shard subdirectory name under a WAL or
// archive root ("shard-00", "shard-01", …). Shared by the daemon, the
// deploy harness and the chaos suite so a restart with the same
// -shards value reopens exactly the directories it wrote.
func DirName(i int) string { return fmt.Sprintf("shard-%02d", i) }

// Shard returns the shard index in [0, N) owning txn.
func (r *Ring) Shard(txn string) int {
	if r.n == 1 {
		return 0
	}
	h := ringHash(txn)
	// First point at or after h, wrapping to points[0] past the end.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
