package sks

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	// Spot-check multiplicative structure against the table-free path.
	for a := 0; a < 256; a += 7 {
		for b := 0; b < 256; b += 11 {
			if got, want := gfMul(byte(a), byte(b)), mulNoTable(byte(a), byte(b)); got != want {
				t.Fatalf("gfMul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfDiv(1, byte(a))) != 1 {
			t.Fatalf("inverse of %d wrong", a)
		}
		if gfDiv(gfMul(byte(a), 0x53), byte(a)) != 0x53 {
			t.Fatalf("div does not invert mul for %d", a)
		}
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("gfDiv(x, 0) did not panic")
		}
	}()
	gfDiv(5, 0)
}

func TestSplitReconstructRoundTrip(t *testing.T) {
	secret := []byte("md5:0123456789abcdef")
	for _, tc := range []struct{ n, k int }{{2, 2}, {3, 2}, {5, 3}, {7, 7}, {10, 1}} {
		shares, err := Split(secret, tc.n, tc.k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if len(shares) != tc.n {
			t.Fatalf("n=%d k=%d: got %d shares", tc.n, tc.k, len(shares))
		}
		got, err := Reconstruct(shares[:tc.k])
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("n=%d k=%d: reconstructed %q", tc.n, tc.k, got)
		}
	}
}

func TestReconstructAnySubset(t *testing.T) {
	secret := []byte{0x00, 0xff, 0x5a, 0x01}
	shares, err := Split(secret, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every 3-subset of 5 shares must reconstruct.
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			for k := j + 1; k < 5; k++ {
				got, err := Reconstruct([]Share{shares[i], shares[j], shares[k]})
				if err != nil {
					t.Fatalf("subset (%d,%d,%d): %v", i, j, k, err)
				}
				if !bytes.Equal(got, secret) {
					t.Fatalf("subset (%d,%d,%d) reconstructed %x", i, j, k, got)
				}
			}
		}
	}
}

func TestTooFewShares(t *testing.T) {
	shares, err := Split([]byte("secret"), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reconstruct(shares[:2]); !errors.Is(err, ErrTooFewShares) {
		t.Fatalf("err = %v, want ErrTooFewShares", err)
	}
	if _, err := Reconstruct(nil); !errors.Is(err, ErrTooFewShares) {
		t.Fatalf("nil shares: err = %v, want ErrTooFewShares", err)
	}
}

func TestTamperedShareDetected(t *testing.T) {
	secret := []byte("the agreed MD5 value")
	shares, err := Split(secret, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The malicious provider flips a byte of its share before a dispute.
	shares[1].Data[3] ^= 0x40
	_, err = Reconstruct(shares)
	if !errors.Is(err, ErrBadCommitment) && !errors.Is(err, ErrInconsistent) {
		t.Fatalf("tampered share: err = %v, want commitment/consistency failure", err)
	}
}

func TestSurplusShareConsistencyCheck(t *testing.T) {
	secret := []byte("x")
	shares, err := Split(secret, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with a surplus share (beyond the threshold prefix): the
	// cross-check must catch it even though reconstruction of the first
	// k shares alone would succeed.
	shares[3].Data[0] ^= 0x01
	if _, err := Reconstruct(shares); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("off-polynomial surplus share: err = %v, want ErrInconsistent", err)
	}
}

func TestMismatchedSharesRejected(t *testing.T) {
	a, _ := Split([]byte("secret-a"), 2, 2)
	b, _ := Split([]byte("secret-b"), 2, 2)
	if _, err := Reconstruct([]Share{a[0], b[1]}); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("mixed splits: err = %v, want ErrInconsistent", err)
	}
	c, _ := Split([]byte("secret-a"), 3, 3)
	if _, err := Reconstruct([]Share{a[0], c[1]}); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("mixed thresholds: err = %v, want ErrInconsistent", err)
	}
	if _, err := Reconstruct([]Share{a[0], a[0].Clone()}); !errors.Is(err, ErrDuplicateShare) {
		t.Fatalf("duplicate shares: err = %v, want ErrDuplicateShare", err)
	}
}

func TestSplitParameterValidation(t *testing.T) {
	if _, err := Split(nil, 2, 2); !errors.Is(err, ErrBadParameters) {
		t.Errorf("empty secret: %v", err)
	}
	if _, err := Split([]byte("s"), 1, 2); !errors.Is(err, ErrBadParameters) {
		t.Errorf("n<k: %v", err)
	}
	if _, err := Split([]byte("s"), 2, 0); !errors.Is(err, ErrBadParameters) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := Split([]byte("s"), 256, 2); !errors.Is(err, ErrBadParameters) {
		t.Errorf("n>255: %v", err)
	}
}

func TestSingleShareRevealsNothing(t *testing.T) {
	// Statistical sanity check of the hiding property: with k=2, a
	// single share's bytes should be near-uniform across many splits of
	// the same secret, i.e. not correlated with the secret byte.
	secret := []byte{0x42}
	counts := make([]int, 256)
	const trials = 2048
	for i := 0; i < trials; i++ {
		shares, err := Split(secret, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		counts[shares[0].Data[0]]++
	}
	// Expect mean 8 per value; fail only on gross non-uniformity (a
	// value appearing more than 8x expectation) which would indicate
	// the polynomial coefficients are not random.
	for v, c := range counts {
		if c > 64 {
			t.Fatalf("share byte value %#x appeared %d/%d times — not hiding", v, c, trials)
		}
	}
}

func TestVerifyShareAgainst(t *testing.T) {
	secret := []byte("agreed digest")
	shares, _ := Split(secret, 2, 2)
	if !VerifyShareAgainst(shares[0], secret) {
		t.Error("true candidate rejected")
	}
	if VerifyShareAgainst(shares[0], []byte("forged digest")) {
		t.Error("forged candidate accepted")
	}
}

func TestSplitReconstructQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(secret []byte) bool {
		if len(secret) == 0 {
			secret = []byte{0}
		}
		n := 2 + rng.Intn(6)
		k := 1 + rng.Intn(n)
		shares, err := Split(secret, n, k)
		if err != nil {
			return false
		}
		// Reconstruct from a random k-subset.
		perm := rng.Perm(n)[:k]
		subset := make([]Share, k)
		for i, p := range perm {
			subset[i] = shares[p]
		}
		got, err := Reconstruct(subset)
		return err == nil && bytes.Equal(got, secret)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
