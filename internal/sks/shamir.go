package sks

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"repro/internal/cryptoutil"
)

// Share is one participant's fragment of a shared secret. X identifies
// the share (nonzero), Data holds one field element per secret byte,
// and Commitment is SHA-256 over the whole secret so reconstruction can
// detect corrupted or substituted shares.
type Share struct {
	// X is the evaluation point, unique and nonzero per share.
	X byte
	// Threshold is the number of shares required to reconstruct.
	Threshold int
	// Data is the per-byte polynomial evaluation at X.
	Data []byte
	// Commitment is SHA-256(secret); identical across all shares of one
	// split, letting Reconstruct verify its output.
	Commitment cryptoutil.Digest
}

// Clone deep-copies the share.
func (s Share) Clone() Share {
	s.Data = append([]byte(nil), s.Data...)
	s.Commitment = s.Commitment.Clone()
	return s
}

// Errors distinguishable with errors.Is.
var (
	ErrTooFewShares   = errors.New("sks: not enough shares to reconstruct")
	ErrInconsistent   = errors.New("sks: shares are mutually inconsistent")
	ErrBadCommitment  = errors.New("sks: reconstructed secret fails commitment check")
	ErrBadParameters  = errors.New("sks: invalid split parameters")
	ErrDuplicateShare = errors.New("sks: duplicate share point")
)

// Split divides secret into n shares with reconstruction threshold k.
// 1 <= k <= n <= 255. The secret must be non-empty.
//
// In the paper's use (§3.2), the user and the provider each keep one
// share of the agreed MD5 with k=2, n=2; with a TAC (§3.4), k=2, n=3 so
// the TAC can break ties.
func Split(secret []byte, n, k int) ([]Share, error) {
	if len(secret) == 0 {
		return nil, fmt.Errorf("%w: empty secret", ErrBadParameters)
	}
	if k < 1 || n < k || n > 255 {
		return nil, fmt.Errorf("%w: n=%d k=%d", ErrBadParameters, n, k)
	}
	commitment := cryptoutil.Sum(cryptoutil.SHA256, secret)

	shares := make([]Share, n)
	for i := range shares {
		shares[i] = Share{
			X:          byte(i + 1),
			Threshold:  k,
			Data:       make([]byte, len(secret)),
			Commitment: commitment.Clone(),
		}
	}
	coeffs := make([]byte, k)
	for byteIdx, sb := range secret {
		coeffs[0] = sb
		if k > 1 {
			if _, err := io.ReadFull(rand.Reader, coeffs[1:]); err != nil {
				return nil, fmt.Errorf("sks: sampling polynomial: %w", err)
			}
			// The leading coefficient may be zero; that is fine for
			// security (degree < k-1 still hides with k-1 shares short).
		}
		for i := range shares {
			shares[i].Data[byteIdx] = evalPoly(coeffs, shares[i].X)
		}
	}
	return shares, nil
}

// Reconstruct recovers the secret from at least Threshold shares and
// verifies it against the shares' commitment. Extra shares beyond the
// threshold are used as a consistency check: if any subset disagrees,
// ErrInconsistent is returned (a share was tampered with).
func Reconstruct(shares []Share) ([]byte, error) {
	if len(shares) == 0 {
		return nil, fmt.Errorf("%w: no shares", ErrTooFewShares)
	}
	k := shares[0].Threshold
	length := len(shares[0].Data)
	commitment := shares[0].Commitment
	seen := map[byte]bool{}
	for _, s := range shares {
		if s.Threshold != k {
			return nil, fmt.Errorf("%w: mixed thresholds %d and %d", ErrInconsistent, k, s.Threshold)
		}
		if len(s.Data) != length {
			return nil, fmt.Errorf("%w: mixed lengths %d and %d", ErrInconsistent, length, len(s.Data))
		}
		if !s.Commitment.Equal(commitment) {
			return nil, fmt.Errorf("%w: mixed commitments", ErrInconsistent)
		}
		if s.X == 0 {
			return nil, fmt.Errorf("%w: share point 0", ErrInconsistent)
		}
		if seen[s.X] {
			return nil, fmt.Errorf("%w: x=%d", ErrDuplicateShare, s.X)
		}
		seen[s.X] = true
	}
	if len(shares) < k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewShares, len(shares), k)
	}

	xs := make([]byte, k)
	ys := make([]byte, k)
	secret := make([]byte, length)
	for b := 0; b < length; b++ {
		for i := 0; i < k; i++ {
			xs[i] = shares[i].X
			ys[i] = shares[i].Data[b]
		}
		secret[b] = interpolateAtZero(xs, ys)
	}

	// Cross-check with any surplus shares: every share must lie on the
	// polynomial defined by the first k.
	if len(shares) > k {
		for _, s := range shares[k:] {
			for b := 0; b < length; b++ {
				// Interpolate at s.X instead of 0.
				var y byte
				for i := 0; i < k; i++ {
					num, den := byte(1), byte(1)
					for j := 0; j < k; j++ {
						if i == j {
							continue
						}
						num = gfMul(num, shares[j].X^s.X)
						den = gfMul(den, shares[i].X^shares[j].X)
					}
					y ^= gfMul(shares[i].Data[b], gfDiv(num, den))
				}
				if y != s.Data[b] {
					return nil, fmt.Errorf("%w: share x=%d off-polynomial at byte %d", ErrInconsistent, s.X, b)
				}
			}
		}
	}

	if !cryptoutil.Sum(cryptoutil.SHA256, secret).Equal(commitment) {
		return nil, ErrBadCommitment
	}
	return secret, nil
}

// VerifyShareAgainst checks a single share's commitment against a known
// candidate secret, without reconstructing. Used during disputes when
// one party claims a digest value and the other holds a share.
func VerifyShareAgainst(s Share, candidate []byte) bool {
	return cryptoutil.Sum(cryptoutil.SHA256, candidate).Equal(s.Commitment)
}
