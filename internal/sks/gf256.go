// Package sks implements the "secret key sharing technique (SKS)" that
// paper §3.2 and §3.4 rely on: after upload, the user and the provider
// (and optionally the TAC) hold *shares* of the agreed MD5 value, so
// that neither can unilaterally forge or deny the agreed digest — the
// digest is recoverable only when the parties "take the shared MD5
// together; recover it and prove his/her innocence".
//
// The paper does not specify the sharing scheme; Shamir secret sharing
// over GF(2^8) is the standard instantiation and preserves exactly the
// property the paper uses: any threshold-sized subset of shares
// reconstructs the secret, and any smaller subset reveals nothing.
// Shares additionally carry a SHA-256 commitment to the secret so that
// a corrupted or forged share is detected at reconstruction time.
package sks

// GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11b),
// via log/exp tables built at init from generator 3.

var (
	gfExp [512]byte
	gfLog [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		// multiply x by the generator 3 = x ^ (x<<1 mod poly)
		y := mulNoTable(x, 3)
		x = y
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// mulNoTable multiplies in GF(2^8) by shift-and-reduce; used only to
// build the tables.
func mulNoTable(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 == 1 {
			p ^= a
		}
		carry := a & 0x80
		a <<= 1
		if carry != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b; b must be nonzero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("sks: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// evalPoly evaluates the polynomial with the given coefficients
// (constant term first) at x, by Horner's rule.
func evalPoly(coeffs []byte, x byte) byte {
	var y byte
	for i := len(coeffs) - 1; i >= 0; i-- {
		y = gfMul(y, x) ^ coeffs[i]
	}
	return y
}

// interpolateAtZero computes the Lagrange interpolation at x=0 of the
// points (xs[i], ys[i]). All xs must be distinct and nonzero.
func interpolateAtZero(xs, ys []byte) byte {
	var secret byte
	for i := range xs {
		num, den := byte(1), byte(1)
		for j := range xs {
			if i == j {
				continue
			}
			num = gfMul(num, xs[j])
			den = gfMul(den, xs[i]^xs[j])
		}
		secret ^= gfMul(ys[i], gfDiv(num, den))
	}
	return secret
}
