// Package faultpoint is a process-wide registry of named crash points
// for the chaos harness. Production code calls Hit(name) at the
// instants the recovery design cares about ("after send, before
// persist"; "after persist, before ack"); the call is a no-op unless a
// test has armed that point. Arming installs a function — typically
// Kill, which panics with a *Crash that the harness catches to simulate
// the process dying exactly there.
//
// The registry is deliberately global: faultpoints live deep inside the
// protocol engines where threading a test hook through every
// constructor would distort the API for a facility only tests use.
// Tests that arm points must Reset when done.
package faultpoint

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Crash is the panic value raised by Kill-armed faultpoints. Harnesses
// recover it to treat "the process died here" as a normal test step.
type Crash struct {
	// Point names the faultpoint that fired.
	Point string
}

// Error makes a *Crash usable as an error when recovered.
func (c *Crash) Error() string { return fmt.Sprintf("faultpoint: simulated crash at %q", c.Point) }

var (
	mu     sync.Mutex
	points map[string]func() // registered; nil fn until armed
	// errPoints overlays error-returning arms on the same namespace:
	// fault sites that model recoverable I/O failures (ENOSPC, EIO,
	// blackholed dials) call HitErr and propagate the injected error
	// instead of dying. A name can be error-armed, crash-armed, or both;
	// HitErr prefers the error arm and falls back to the crash arm so the
	// kill-everything chaos sweep still reaches every site.
	errPoints map[string]func() error
	armed     atomic.Int32 // fast-path gate for Hit and HitErr
)

// Register declares a faultpoint name at package init time so List can
// enumerate every kill site without executing the code paths. Multiple
// registrations of one name are idempotent. Returns name so it can be
// assigned to a package-level constant-like var.
func Register(name string) string {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]func())
	}
	if _, ok := points[name]; !ok {
		points[name] = nil
	}
	return name
}

// List returns every registered faultpoint name, sorted.
func List() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for name := range points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Arm installs fn to run when Hit(name) is reached. Arming an
// unregistered name registers it.
func Arm(name string, fn func()) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]func())
	}
	if points[name] == nil && fn != nil {
		armed.Add(1)
	} else if points[name] != nil && fn == nil {
		armed.Add(-1)
	}
	points[name] = fn
}

// ArmErr installs fn to run when HitErr(name) is reached; the error it
// returns is injected into the caller (a simulated ENOSPC, EIO, or
// blackholed dial). Arming an unregistered name registers it so List
// still enumerates every site. Pass nil to disarm the error arm.
func ArmErr(name string, fn func() error) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]func())
	}
	if _, ok := points[name]; !ok {
		points[name] = nil
	}
	if errPoints == nil {
		errPoints = make(map[string]func() error)
	}
	if errPoints[name] == nil && fn != nil {
		armed.Add(1)
	} else if errPoints[name] != nil && fn == nil {
		armed.Add(-1)
	}
	errPoints[name] = fn
}

// Disarm removes the armed functions (crash and error) from name,
// leaving it registered.
func Disarm(name string) {
	Arm(name, nil)
	ArmErr(name, nil)
}

// Reset disarms every faultpoint (registrations persist).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for name, fn := range points {
		if fn != nil {
			points[name] = nil
		}
	}
	for name, fn := range errPoints {
		if fn != nil {
			errPoints[name] = nil
		}
	}
	armed.Store(0)
}

// Hit runs the armed function for name, if any. The unarmed fast path
// is a single atomic load, so production code can call Hit liberally.
func Hit(name string) {
	if armed.Load() == 0 {
		return
	}
	mu.Lock()
	fn := points[name]
	mu.Unlock()
	if fn != nil {
		fn()
	}
}

// HitErr runs the armed function for name and returns its error, for
// fault sites that model recoverable failures instead of crashes. An
// error arm (ArmErr) wins; otherwise a crash arm installed with plain
// Arm still fires — the kill-everything chaos sweep arms every listed
// point with Kill and must reach HitErr sites too. Unarmed, a single
// atomic load.
func HitErr(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	efn := errPoints[name]
	fn := points[name]
	mu.Unlock()
	if efn != nil {
		return efn()
	}
	if fn != nil {
		fn()
	}
	return nil
}

// Kill returns an arm function that panics with a *Crash for name —
// the standard way to simulate dying at a faultpoint:
//
//	faultpoint.Arm(pt, faultpoint.Kill(pt))
func Kill(name string) func() {
	return func() { panic(&Crash{Point: name}) }
}
