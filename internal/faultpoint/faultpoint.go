// Package faultpoint is a process-wide registry of named crash points
// for the chaos harness. Production code calls Hit(name) at the
// instants the recovery design cares about ("after send, before
// persist"; "after persist, before ack"); the call is a no-op unless a
// test has armed that point. Arming installs a function — typically
// Kill, which panics with a *Crash that the harness catches to simulate
// the process dying exactly there.
//
// The registry is deliberately global: faultpoints live deep inside the
// protocol engines where threading a test hook through every
// constructor would distort the API for a facility only tests use.
// Tests that arm points must Reset when done.
package faultpoint

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Crash is the panic value raised by Kill-armed faultpoints. Harnesses
// recover it to treat "the process died here" as a normal test step.
type Crash struct {
	// Point names the faultpoint that fired.
	Point string
}

// Error makes a *Crash usable as an error when recovered.
func (c *Crash) Error() string { return fmt.Sprintf("faultpoint: simulated crash at %q", c.Point) }

var (
	mu     sync.Mutex
	points map[string]func() // registered; nil fn until armed
	armed  atomic.Int32      // fast-path gate for Hit
)

// Register declares a faultpoint name at package init time so List can
// enumerate every kill site without executing the code paths. Multiple
// registrations of one name are idempotent. Returns name so it can be
// assigned to a package-level constant-like var.
func Register(name string) string {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]func())
	}
	if _, ok := points[name]; !ok {
		points[name] = nil
	}
	return name
}

// List returns every registered faultpoint name, sorted.
func List() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for name := range points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Arm installs fn to run when Hit(name) is reached. Arming an
// unregistered name registers it.
func Arm(name string, fn func()) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]func())
	}
	if points[name] == nil && fn != nil {
		armed.Add(1)
	} else if points[name] != nil && fn == nil {
		armed.Add(-1)
	}
	points[name] = fn
}

// Disarm removes the armed function from name, leaving it registered.
func Disarm(name string) { Arm(name, nil) }

// Reset disarms every faultpoint (registrations persist).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for name, fn := range points {
		if fn != nil {
			points[name] = nil
		}
	}
	armed.Store(0)
}

// Hit runs the armed function for name, if any. The unarmed fast path
// is a single atomic load, so production code can call Hit liberally.
func Hit(name string) {
	if armed.Load() == 0 {
		return
	}
	mu.Lock()
	fn := points[name]
	mu.Unlock()
	if fn != nil {
		fn()
	}
}

// Kill returns an arm function that panics with a *Crash for name —
// the standard way to simulate dying at a faultpoint:
//
//	faultpoint.Arm(pt, faultpoint.Kill(pt))
func Kill(name string) func() {
	return func() { panic(&Crash{Point: name}) }
}
