package faultpoint

import (
	"testing"
)

func TestRegisterListArm(t *testing.T) {
	defer Reset()
	a := Register("test.point.a")
	Register("test.point.b")
	Register("test.point.a") // idempotent

	found := map[string]bool{}
	for _, name := range List() {
		found[name] = true
	}
	if !found["test.point.a"] || !found["test.point.b"] {
		t.Fatalf("List() = %v, missing registered points", List())
	}

	fired := 0
	Arm(a, func() { fired++ })
	Hit(a)
	Hit("test.point.b") // unarmed: no-op
	if fired != 1 {
		t.Fatalf("armed point fired %d times, want 1", fired)
	}
	Disarm(a)
	Hit(a)
	if fired != 1 {
		t.Fatalf("disarmed point fired; count %d", fired)
	}
}

func TestKillPanicsWithCrash(t *testing.T) {
	defer Reset()
	pt := Register("test.point.kill")
	Arm(pt, Kill(pt))
	defer func() {
		r := recover()
		c, ok := r.(*Crash)
		if !ok {
			t.Fatalf("recovered %T (%v), want *Crash", r, r)
		}
		if c.Point != pt {
			t.Fatalf("Crash.Point = %q, want %q", c.Point, pt)
		}
		if c.Error() == "" {
			t.Fatal("Crash.Error() empty")
		}
	}()
	Hit(pt)
	t.Fatal("Hit on killed point returned")
}

func TestResetDisarmsAll(t *testing.T) {
	defer Reset()
	fired := false
	Arm("test.point.reset", func() { fired = true })
	Reset()
	Hit("test.point.reset")
	if fired {
		t.Fatal("point fired after Reset")
	}
	// Registration survives Reset.
	for _, name := range List() {
		if name == "test.point.reset" {
			return
		}
	}
	t.Fatal("registration lost after Reset")
}

func TestUnarmedHitIsCheap(t *testing.T) {
	// Not a benchmark assertion — just proves the fast path doesn't
	// require the point to exist.
	Hit("never.registered")
}
