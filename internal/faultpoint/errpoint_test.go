package faultpoint

import (
	"errors"
	"testing"
)

// TestHitErrInjectsError checks the error-arm path: ArmErr installs a
// failure, HitErr returns it, and disarming restores the no-op.
func TestHitErrInjectsError(t *testing.T) {
	defer Reset()
	boom := errors.New("enospc")
	ArmErr("test.errpoint", func() error { return boom })
	if err := HitErr("test.errpoint"); !errors.Is(err, boom) {
		t.Fatalf("HitErr = %v, want %v", err, boom)
	}
	ArmErr("test.errpoint", nil)
	if err := HitErr("test.errpoint"); err != nil {
		t.Fatalf("HitErr after disarm = %v, want nil", err)
	}
}

// TestHitErrRegistersName checks ArmErr makes the point enumerable so
// the chaos sweep over List() covers HitErr sites.
func TestHitErrRegistersName(t *testing.T) {
	defer Reset()
	ArmErr("test.errpoint.listed", func() error { return nil })
	found := false
	for _, name := range List() {
		if name == "test.errpoint.listed" {
			found = true
		}
	}
	if !found {
		t.Fatal("ArmErr'd point missing from List()")
	}
}

// TestHitErrFallsBackToCrashArm checks a plain Arm (e.g. Kill) fires at
// HitErr sites when no error arm is installed — the chaos sweep relies
// on this to crash processes at error-injection points.
func TestHitErrFallsBackToCrashArm(t *testing.T) {
	defer Reset()
	fired := false
	Arm("test.errpoint.crash", func() { fired = true })
	if err := HitErr("test.errpoint.crash"); err != nil {
		t.Fatalf("HitErr = %v, want nil from plain arm", err)
	}
	if !fired {
		t.Fatal("plain arm did not fire at HitErr site")
	}
	// An error arm takes precedence over the crash arm.
	boom := errors.New("eio")
	fired = false
	ArmErr("test.errpoint.crash", func() error { return boom })
	if err := HitErr("test.errpoint.crash"); !errors.Is(err, boom) {
		t.Fatalf("HitErr = %v, want error arm to win", err)
	}
	if fired {
		t.Fatal("crash arm fired despite error arm")
	}
}

// TestResetClearsErrArms checks Reset disarms error arms too.
func TestResetClearsErrArms(t *testing.T) {
	ArmErr("test.errpoint.reset", func() error { return errors.New("x") })
	Reset()
	if err := HitErr("test.errpoint.reset"); err != nil {
		t.Fatalf("HitErr after Reset = %v, want nil", err)
	}
}
