package arbitrator_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/arbitrator"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/storage"
	"repro/internal/transport"
)

// fixture runs a full upload on a real deployment and returns the
// pieces a dispute needs.
type fixture struct {
	d    *deploy.Deployment
	arb  *arbitrator.Arbitrator
	conn transport.Conn
	up   *core.UploadResult
	data []byte
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	conn, err := d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })

	data := []byte("company financial records: total = 1000")
	up, err := d.Client.Upload(context.Background(), conn, "txn-dispute", "finance/records", data)
	if err != nil {
		t.Fatal(err)
	}
	arb := arbitrator.New(d.CA.PublicKey(), d.CA.Lookup, nil)
	return &fixture{d: d, arb: arb, conn: conn, up: up, data: data}
}

func (fx *fixture) baseCase() *arbitrator.Case {
	return &arbitrator.Case{
		TxnID:        "txn-dispute",
		ObjectKey:    "finance/records",
		ClaimantID:   deploy.ClientName,
		RespondentID: deploy.ProviderName,
		ClaimantNRO:  fx.up.NRO,
		ClaimantNRR:  fx.up.NRR,
	}
}

// produced returns what the provider's store currently serves.
func (fx *fixture) produced(t *testing.T) []byte {
	t.Helper()
	obj, err := fx.d.Store.Get("finance/records")
	if err != nil {
		return nil
	}
	return obj.Data
}

// TestProviderFaultOnTamper: Eve tampers in storage (covering her
// tracks at the platform layer); the arbitrator rules against her.
func TestProviderFaultOnTamper(t *testing.T) {
	fx := newFixture(t)
	tam := fx.d.Store.(storage.Tamperer)
	if err := tam.Tamper("finance/records", true, func(b []byte) []byte {
		return bytes.Replace(b, []byte("1000"), []byte("9999"), 1)
	}); err != nil {
		t.Fatal(err)
	}
	c := fx.baseCase()
	c.ProducedData = fx.produced(t)
	dec := fx.arb.Decide(c)
	if dec.Verdict != arbitrator.VerdictProviderFault {
		t.Fatalf("verdict = %v, want provider-at-fault\n%s", dec.Verdict, strings.Join(dec.Findings, "\n"))
	}
	if dec.AgreedMD5.IsZero() {
		t.Error("agreed digest not established")
	}
}

// TestBlackmailExposed: Alice falsely claims her data was tampered;
// the provider produces data matching the agreed digest and is
// exonerated — the §2.4 blackmail problem answered.
func TestBlackmailExposed(t *testing.T) {
	fx := newFixture(t)
	c := fx.baseCase()
	c.ProducedData = fx.produced(t) // untampered
	dec := fx.arb.Decide(c)
	if dec.Verdict != arbitrator.VerdictClaimFalse {
		t.Fatalf("verdict = %v, want claim-false\n%s", dec.Verdict, strings.Join(dec.Findings, "\n"))
	}
}

// TestProviderFaultOnNoProduction: the provider cannot produce any
// data for an agreed digest.
func TestProviderFaultOnNoProduction(t *testing.T) {
	fx := newFixture(t)
	fx.d.Store.Delete("finance/records")
	c := fx.baseCase()
	c.ProducedData = fx.produced(t) // nil
	dec := fx.arb.Decide(c)
	if dec.Verdict != arbitrator.VerdictProviderFault {
		t.Fatalf("verdict = %v, want provider-at-fault", dec.Verdict)
	}
}

// TestForgedNRODismissed: a claimant who forges the NRO digests (to
// frame the provider) is caught by signature verification.
func TestForgedNRODismissed(t *testing.T) {
	fx := newFixture(t)
	c := fx.baseCase()
	forged := *fx.up.NRO
	forgedHeader := *fx.up.NRO.Header
	forgedHeader.SetDigests([]byte("data alice never uploaded"))
	forged.Header = &forgedHeader
	c.ClaimantNRO = &forged
	c.ProducedData = fx.produced(t)
	dec := fx.arb.Decide(c)
	if dec.Verdict != arbitrator.VerdictClaimUnsupported {
		t.Fatalf("verdict = %v, want claim-unsupported", dec.Verdict)
	}
}

// TestForgedNRRNoAgreement: a claimant fabricating the receipt cannot
// establish an agreement.
func TestForgedNRRNoAgreement(t *testing.T) {
	fx := newFixture(t)
	c := fx.baseCase()
	forged := *fx.up.NRR
	forgedHeader := *fx.up.NRR.Header
	forgedHeader.Note = "altered"
	forged.Header = &forgedHeader
	c.ClaimantNRR = &forged
	c.RespondentNRR = nil
	c.ProducedData = fx.produced(t)
	dec := fx.arb.Decide(c)
	if dec.Verdict != arbitrator.VerdictNoAgreement {
		t.Fatalf("verdict = %v, want no-agreement", dec.Verdict)
	}
}

// TestMissingReceiptNoAgreement: without any NRR (and no TTP statement)
// there is no storage obligation to enforce.
func TestMissingReceiptNoAgreement(t *testing.T) {
	fx := newFixture(t)
	c := fx.baseCase()
	c.ClaimantNRR = nil
	c.ProducedData = fx.produced(t)
	dec := fx.arb.Decide(c)
	if dec.Verdict != arbitrator.VerdictNoAgreement {
		t.Fatalf("verdict = %v, want no-agreement", dec.Verdict)
	}
}

// TestAbortedTransaction: a respondent-signed abort acceptance ends
// the dispute.
func TestAbortedTransaction(t *testing.T) {
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	conn, err := d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Stall the upload, then abort it.
	d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true})
	d.Client.Upload(context.Background(), conn, "txn-ab", "k", []byte("v"))
	d.Provider.SetMisbehavior(core.Misbehavior{})
	ab, err := d.Client.Abort(context.Background(), conn, "txn-ab", "peer silent")
	if err != nil || !ab.Accepted {
		t.Fatalf("abort: %+v, %v", ab, err)
	}

	nro, err := d.Client.PendingNRO("txn-ab")
	if err != nil {
		t.Fatal(err)
	}
	arb := arbitrator.New(d.CA.PublicKey(), d.CA.Lookup, nil)
	dec := arb.Decide(&arbitrator.Case{
		TxnID:        "txn-ab",
		ClaimantID:   deploy.ClientName,
		RespondentID: deploy.ProviderName,
		ClaimantNRO:  nro,
		AbortReceipt: ab.Receipt,
	})
	if dec.Verdict != arbitrator.VerdictAborted {
		t.Fatalf("verdict = %v, want transaction-aborted\n%s", dec.Verdict, strings.Join(dec.Findings, "\n"))
	}
}

// TestProviderUnresponsiveWithTTPStatement: the TTP statement fills the
// missing-NRR gap when the provider stonewalls.
func TestProviderUnresponsiveWithTTPStatement(t *testing.T) {
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	conn, err := d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	d.Provider.SetMisbehavior(core.Misbehavior{SilentAfterNRO: true, IgnoreResolve: true})
	if _, err := d.Client.Upload(context.Background(), conn, "txn-ttp", "k", []byte("v")); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("setup: %v", err)
	}
	ttpConn, err := d.DialTTP()
	if err != nil {
		t.Fatal(err)
	}
	defer ttpConn.Close()
	res, err := d.Client.Resolve(context.Background(), ttpConn, "txn-ttp", "no NRR")
	if err != nil || res.TTPStatement == nil {
		t.Fatalf("resolve: %+v, %v", res, err)
	}

	nro, _ := d.Client.PendingNRO("txn-ttp")
	arb := arbitrator.New(d.CA.PublicKey(), d.CA.Lookup, nil)
	dec := arb.Decide(&arbitrator.Case{
		TxnID:        "txn-ttp",
		ClaimantID:   deploy.ClientName,
		RespondentID: deploy.ProviderName,
		ClaimantNRO:  nro,
		TTPStatement: res.TTPStatement,
	})
	if dec.Verdict != arbitrator.VerdictProviderUnresponsive {
		t.Fatalf("verdict = %v, want provider-unresponsive\n%s", dec.Verdict, strings.Join(dec.Findings, "\n"))
	}
}

// TestEvidenceFromWrongTransactionRejected: evidence for another
// transaction cannot support the claim.
func TestEvidenceFromWrongTransactionRejected(t *testing.T) {
	fx := newFixture(t)
	c := fx.baseCase()
	c.TxnID = "txn-other"
	dec := fx.arb.Decide(c)
	if dec.Verdict != arbitrator.VerdictClaimUnsupported {
		t.Fatalf("verdict = %v, want claim-unsupported", dec.Verdict)
	}
}

func TestVerdictStrings(t *testing.T) {
	seen := map[string]bool{}
	for v := arbitrator.VerdictProviderFault; v <= arbitrator.VerdictProviderUnresponsive; v++ {
		s := v.String()
		if seen[s] {
			t.Errorf("duplicate verdict string %q", s)
		}
		seen[s] = true
	}
}

func TestFindingsAreExplanatory(t *testing.T) {
	fx := newFixture(t)
	c := fx.baseCase()
	c.ProducedData = fx.produced(t)
	dec := fx.arb.Decide(c)
	if len(dec.Findings) < 3 {
		t.Fatalf("decision has only %d findings: %v", len(dec.Findings), dec.Findings)
	}
	joined := strings.Join(dec.Findings, "\n")
	for _, want := range []string{"claimant NRO", "NRR", "agreed digest"} {
		if !strings.Contains(joined, want) {
			t.Errorf("findings missing %q:\n%s", want, joined)
		}
	}
}

// TestDisputeAfterCertificateExpiry: evidence produced while the
// certificates were valid must remain arbitrable after they expire —
// the arbitrator validates certificates at the evidence timestamp.
func TestDisputeAfterCertificateExpiry(t *testing.T) {
	fx := newFixture(t)
	// A dispute filed two years later, long past the deployment's cert
	// window... the fixture deployment issues 10-year certs, so model
	// expiry by moving the arbitrator's clock far past NotAfter.
	farFuture := time.Now().Add(20 * 365 * 24 * time.Hour)
	lateArb := arbitrator.New(fx.d.CA.PublicKey(), fx.d.CA.Lookup, func() time.Time { return farFuture })
	c := fx.baseCase()
	c.ProducedData = fx.produced(t)
	dec := lateArb.Decide(c)
	if dec.Verdict != arbitrator.VerdictClaimFalse {
		t.Fatalf("late dispute verdict = %v (findings: %v)", dec.Verdict, dec.Findings)
	}
}
