package arbitrator_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/arbitrator"
	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/storage"
	"repro/internal/wal"
)

// TestColdCaseDecidesCompactedSession runs a real upload, checkpoints
// both parties so the session lives only in their cold archives, then
// arbitrates straight from the archive bundles: the honest provider
// must be cleared (VerdictClaimFalse) without touching either WAL.
func TestColdCaseDecidesCompactedSession(t *testing.T) {
	dir := t.TempDir()
	store := storage.NewMem(time.Now)
	ctx := context.Background()
	data := []byte("cold case payload")

	openWAL := func(sub string) *wal.WAL {
		w, err := wal.Open(filepath.Join(dir, sub, "wal"), wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	openArc := func(sub string) *archive.Store {
		s, err := archive.Open(filepath.Join(dir, sub, "archive"))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cw, pw := openWAL("client"), openWAL("provider")
	ca, pa := openArc("client"), openArc("provider")
	defer func() { cw.Close(); pw.Close(); ca.Close(); pa.Close() }()

	d, err := deploy.New(deploy.Config{
		TestKeys:      true,
		ProviderStore: store,
		ClientOpts:    []core.Option{core.WithJournal(cw), core.WithArchive(ca)},
		ProviderOpts:  []core.Option{core.WithJournal(pw), core.WithArchive(pa)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	conn, err := d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Client.Upload(ctx, conn, "txn-cold-arb", "cold/arb", data); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if _, err := d.Client.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Provider.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	cb, err := ca.Get("txn-cold-arb")
	if err != nil {
		t.Fatalf("client cold bundle: %v", err)
	}
	pb, err := pa.Get("txn-cold-arb")
	if err != nil {
		t.Fatalf("provider cold bundle: %v", err)
	}
	obj, err := store.Get("cold/arb")
	if err != nil {
		t.Fatal(err)
	}
	c, err := arbitrator.CaseFromBundles(cb, pb, obj.Data)
	if err != nil {
		t.Fatalf("building case from bundles: %v", err)
	}
	if c.ClaimantID != deploy.ClientName || c.RespondentID != deploy.ProviderName ||
		c.ObjectKey != "cold/arb" || c.ClaimantNRO == nil || c.ClaimantNRR == nil || c.RespondentNRR == nil {
		t.Fatalf("incomplete case from bundles: %+v", c)
	}

	arb := arbitrator.NewWithKey(d.CA.Key(), d.CA.Lookup, nil)
	dec := arb.Decide(c)
	if dec.Verdict != arbitrator.VerdictClaimFalse {
		t.Fatalf("verdict = %s, want %s; findings: %v", dec.Verdict, arbitrator.VerdictClaimFalse, dec.Findings)
	}

	// Tampered production must still convict — the archived digests keep
	// their teeth after compaction.
	tampered := append([]byte(nil), obj.Data...)
	tampered[0] ^= 0xFF
	c2, err := arbitrator.CaseFromBundles(cb, pb, tampered)
	if err != nil {
		t.Fatal(err)
	}
	if dec := arb.Decide(c2); dec.Verdict != arbitrator.VerdictProviderFault {
		t.Fatalf("tampered verdict = %s, want %s; findings: %v", dec.Verdict, arbitrator.VerdictProviderFault, dec.Findings)
	}

	// A bundle without the claimant's NRO cannot seed a case.
	if _, err := arbitrator.CaseFromBundles(&archive.Bundle{Txn: "txn-empty"}, nil, nil); err == nil {
		t.Fatal("empty bundle produced a case")
	}
}
