package arbitrator

import (
	"fmt"

	"repro/internal/archive"
	"repro/internal/evidence"
)

// CaseFromBundles assembles a dispute Case directly from the parties'
// cold archive bundles — the arbitration read path for sessions long
// since compacted out of the journal. One indexed archive read per
// party (O(1) in the number of archived sessions) yields everything
// the arbitrator needs; the WAL is never touched.
//
// The claimant bundle supplies the claimant's own NRO plus whatever
// counter-evidence it received (NRR, abort acceptance, TTP statement);
// the respondent bundle (may be nil) supplies the respondent's own
// receipt copy. produced is the data the respondent produces at
// arbitration, nil when it cannot produce anything.
func CaseFromBundles(claimant, respondent *archive.Bundle, produced []byte) (*Case, error) {
	if claimant == nil {
		return nil, fmt.Errorf("arbitrator: claimant bundle is required")
	}
	nro, err := bundleByKind(claimant, evidence.RoleOwn, evidence.KindNRO)
	if err != nil {
		return nil, fmt.Errorf("arbitrator: claimant bundle for %s holds no NRO: %w", claimant.Txn, err)
	}
	c := &Case{
		TxnID:        claimant.Txn,
		ObjectKey:    nro.Header.ObjectKey,
		ClaimantID:   nro.Header.SenderID,
		RespondentID: nro.Header.RecipientID,
		ClaimantNRO:  nro,
		ProducedData: produced,
	}
	if ev, err := bundleByKind(claimant, evidence.RolePeer, evidence.KindNRR); err == nil {
		c.ClaimantNRR = ev
	}
	if ev, err := bundleByKind(claimant, evidence.RolePeer, evidence.KindAbortAccept); err == nil {
		c.AbortReceipt = ev
	}
	if ev, err := bundleByKind(claimant, evidence.RolePeer, evidence.KindResolveResponse); err == nil {
		c.TTPStatement = ev
	}
	// Storage-dwell audit material (DESIGN.md §14): the challenger
	// journals its challenge as own evidence before sending, so an
	// unanswered challenge survives in the claimant bundle alone —
	// enough to convict without any download.
	if ev, err := bundleByKind(claimant, evidence.RoleOwn, evidence.KindAuditChallenge); err == nil {
		c.AuditChallenge = ev
	}
	if ev, err := bundleByKind(claimant, evidence.RolePeer, evidence.KindAuditResponse); err == nil {
		c.AuditResponse = ev
	}
	if respondent != nil {
		if respondent.Txn != claimant.Txn {
			return nil, fmt.Errorf("arbitrator: bundle mismatch: claimant %s vs respondent %s", claimant.Txn, respondent.Txn)
		}
		if ev, err := bundleByKind(respondent, evidence.RoleOwn, evidence.KindNRR); err == nil {
			c.RespondentNRR = ev
		}
		// The respondent may hold the response copy the claimant never
		// received (e.g. the send crashed after journaling).
		if c.AuditResponse == nil {
			if ev, err := bundleByKind(respondent, evidence.RoleOwn, evidence.KindAuditResponse); err == nil {
				c.AuditResponse = ev
			}
		}
	}
	return c, nil
}

// bundleByKind returns the latest item of the given role and header
// kind in an archive bundle (items are stored in arrival order).
func bundleByKind(b *archive.Bundle, role evidence.Role, kind evidence.Kind) (*evidence.Evidence, error) {
	for i := len(b.Items) - 1; i >= 0; i-- {
		it := b.Items[i]
		if evidence.Role(it.Role) != role {
			continue
		}
		ev, err := evidence.Decode(it.Blob)
		if err != nil {
			return nil, fmt.Errorf("arbitrator: decoding archived evidence for %s: %w", b.Txn, err)
		}
		if ev.Header.Kind == kind {
			return ev, nil
		}
	}
	return nil, fmt.Errorf("%w: %s (%s, %s)", evidence.ErrNoEvidence, b.Txn, role, kind)
}
