package arbitrator

import (
	"bytes"
	"fmt"

	"repro/internal/archive"
	"repro/internal/audit"
	"repro/internal/evidence"
)

// CaseFromBundles assembles a dispute Case directly from the parties'
// cold archive bundles — the arbitration read path for sessions long
// since compacted out of the journal. One indexed archive read per
// party (O(1) in the number of archived sessions) yields everything
// the arbitrator needs; the WAL is never touched.
//
// The claimant bundle supplies the claimant's own NRO plus whatever
// counter-evidence it received (NRR, abort acceptance, TTP statement);
// the respondent bundle (may be nil) supplies the respondent's own
// receipt copy. produced is the data the respondent produces at
// arbitration, nil when it cannot produce anything.
func CaseFromBundles(claimant, respondent *archive.Bundle, produced []byte) (*Case, error) {
	if claimant == nil {
		return nil, fmt.Errorf("arbitrator: claimant bundle is required")
	}
	nro, err := bundleByKind(claimant, evidence.RoleOwn, evidence.KindNRO)
	if err != nil {
		return nil, fmt.Errorf("arbitrator: claimant bundle for %s holds no NRO: %w", claimant.Txn, err)
	}
	c := &Case{
		TxnID:        claimant.Txn,
		ObjectKey:    nro.Header.ObjectKey,
		ClaimantID:   nro.Header.SenderID,
		RespondentID: nro.Header.RecipientID,
		ClaimantNRO:  nro,
		ProducedData: produced,
	}
	if ev, err := bundleByKind(claimant, evidence.RolePeer, evidence.KindNRR); err == nil {
		c.ClaimantNRR = ev
	}
	if ev, err := bundleByKind(claimant, evidence.RolePeer, evidence.KindAbortAccept); err == nil {
		c.AbortReceipt = ev
	}
	if ev, err := bundleByKind(claimant, evidence.RolePeer, evidence.KindResolveResponse); err == nil {
		c.TTPStatement = ev
	}
	// Storage-dwell audit material (DESIGN.md §14): the challenger
	// journals its challenge as own evidence before sending, so an
	// unanswered challenge survives in the claimant bundle alone —
	// enough to convict without any download.
	if ev, err := bundleByKind(claimant, evidence.RoleOwn, evidence.KindAuditChallenge); err == nil {
		c.AuditChallenge = ev
	}
	if respondent != nil {
		if respondent.Txn != claimant.Txn {
			return nil, fmt.Errorf("arbitrator: bundle mismatch: claimant %s vs respondent %s", claimant.Txn, respondent.Txn)
		}
		if ev, err := bundleByKind(respondent, evidence.RoleOwn, evidence.KindNRR); err == nil {
			c.RespondentNRR = ev
		}
	}
	// Pair the response to the selected challenge BY NONCE, not by
	// recency: after several audit rounds both bundles hold many
	// responses, and pairing the newest challenge with the newest
	// response a bundle happens to hold can cross rounds — a nonce
	// mismatch that would convict an honest provider. Both bundles are
	// always scanned: the respondent may hold the only copy answering
	// this challenge (e.g. its send crashed after journaling) even when
	// the claimant still holds responses to older rounds.
	c.AuditResponse = matchAuditResponse(c.AuditChallenge, claimant, respondent)
	return c, nil
}

// matchAuditResponse finds the audit response answering chEv's nonce:
// the claimant's received copy first (RolePeer), then the respondent's
// own journaled copy (RoleOwn). When the challenge note does not parse
// the nonce is unknowable and the newest response stands in — Decide
// ignores the audit claim of an unparseable challenge anyway.
func matchAuditResponse(chEv *evidence.Evidence, claimant, respondent *archive.Bundle) *evidence.Evidence {
	if chEv == nil {
		return nil
	}
	var nonce []byte
	if ch, err := audit.ParseChallengeNote(chEv.Header.Note); err == nil {
		nonce = ch.Nonce
	}
	if ev := scanAuditResponses(claimant, evidence.RolePeer, nonce); ev != nil {
		return ev
	}
	if respondent != nil {
		if ev := scanAuditResponses(respondent, evidence.RoleOwn, nonce); ev != nil {
			return ev
		}
	}
	return nil
}

// scanAuditResponses walks a bundle newest-first for an audit response
// under the given role whose decoded nonce matches; a nil nonce
// matches the newest response of the role. Undecodable items are
// skipped — one corrupt archived frame must not mask a valid answer.
func scanAuditResponses(b *archive.Bundle, role evidence.Role, nonce []byte) *evidence.Evidence {
	for i := len(b.Items) - 1; i >= 0; i-- {
		it := b.Items[i]
		if evidence.Role(it.Role) != role {
			continue
		}
		ev, err := evidence.Decode(it.Blob)
		if err != nil || ev.Header.Kind != evidence.KindAuditResponse {
			continue
		}
		if nonce == nil {
			return ev
		}
		if resp, err := audit.ParseResponseNote(ev.Header.Note); err == nil && bytes.Equal(resp.Nonce, nonce) {
			return ev
		}
	}
	return nil
}

// bundleByKind returns the latest item of the given role and header
// kind in an archive bundle (items are stored in arrival order).
func bundleByKind(b *archive.Bundle, role evidence.Role, kind evidence.Kind) (*evidence.Evidence, error) {
	for i := len(b.Items) - 1; i >= 0; i-- {
		it := b.Items[i]
		if evidence.Role(it.Role) != role {
			continue
		}
		ev, err := evidence.Decode(it.Blob)
		if err != nil {
			return nil, fmt.Errorf("arbitrator: decoding archived evidence for %s: %w", b.Txn, err)
		}
		if ev.Header.Kind == kind {
			return ev, nil
		}
	}
	return nil, fmt.Errorf("%w: %s (%s, %s)", evidence.ErrNoEvidence, b.Txn, role, kind)
}
