package arbitrator_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/arbitrator"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/evidence"
	"repro/internal/merkle"
	"repro/internal/storage"
)

// aggFixture settles a session of uploads and returns everything a
// bulk dispute needs: the aggregate receipt, the client's proof tree,
// and the archived per-upload evidence.
type aggFixture struct {
	d    *deploy.Deployment
	arb  *arbitrator.Arbitrator
	res  *core.SettleResult
	txns []string
}

func newAggFixture(t *testing.T) *aggFixture {
	t.Helper()
	d, err := deploy.New(deploy.Config{TestKeys: true, ResponseTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	conn, err := d.DialProvider()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })

	txns := make([]string, 5)
	for i := range txns {
		txns[i] = fmt.Sprintf("txn-agg-%d", i)
		data := []byte(fmt.Sprintf("ledger page %d: total = 1000", i))
		if _, err := d.Client.Upload(context.Background(), conn, txns[i], fmt.Sprintf("ledger/%d", i), data); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.Client.SettleSession(context.Background(), conn, "sess-agg", txns)
	if err != nil {
		t.Fatal(err)
	}
	arb := arbitrator.NewWithKey(d.CA.Key(), d.CA.Lookup, nil)
	return &aggFixture{d: d, arb: arb, res: res, txns: txns}
}

// aggCase builds a dispute over the i'th settled upload using the
// aggregate receipt instead of an individual NRR.
func (fx *aggFixture) aggCase(t *testing.T, i int) *arbitrator.Case {
	t.Helper()
	nro, err := fx.d.Client.Archive().ByKind(fx.txns[i], evidence.RoleOwn, evidence.KindNRO)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := fx.res.Proof(i)
	if err != nil {
		t.Fatal(err)
	}
	return &arbitrator.Case{
		TxnID:        fx.txns[i],
		ObjectKey:    fmt.Sprintf("ledger/%d", i),
		ClaimantID:   deploy.ClientName,
		RespondentID: deploy.ProviderName,
		ClaimantNRO:  nro,
		AggReceipt:   fx.res.Receipt,
		AggProof:     proof,
	}
}

// TestAggregateReceiptDisputeTamper: the session settled with one
// signature; when one of its uploads is later tampered in storage, the
// receipt plus an inclusion proof convicts the provider exactly as an
// individual NRR would.
func TestAggregateReceiptDisputeTamper(t *testing.T) {
	fx := newAggFixture(t)
	tam := fx.d.Store.(storage.Tamperer)
	if err := tam.Tamper("ledger/3", true, func(b []byte) []byte {
		return bytes.Replace(b, []byte("1000"), []byte("9999"), 1)
	}); err != nil {
		t.Fatal(err)
	}
	c := fx.aggCase(t, 3)
	obj, err := fx.d.Store.Get("ledger/3")
	if err != nil {
		t.Fatal(err)
	}
	c.ProducedData = obj.Data
	dec := fx.arb.Decide(c)
	if dec.Verdict != arbitrator.VerdictProviderFault {
		t.Fatalf("verdict = %v, want provider-at-fault\n%s", dec.Verdict, strings.Join(dec.Findings, "\n"))
	}
	if dec.AgreedMD5.IsZero() {
		t.Error("agreed digest not established from aggregate receipt")
	}
}

// TestAggregateReceiptDisputeIntact: intact data plus a valid leaf
// proof exonerates the provider (the blackmail answer, bulk edition).
func TestAggregateReceiptDisputeIntact(t *testing.T) {
	fx := newAggFixture(t)
	c := fx.aggCase(t, 1)
	obj, err := fx.d.Store.Get("ledger/1")
	if err != nil {
		t.Fatal(err)
	}
	c.ProducedData = obj.Data
	dec := fx.arb.Decide(c)
	if dec.Verdict != arbitrator.VerdictClaimFalse {
		t.Fatalf("verdict = %v, want claim-false\n%s", dec.Verdict, strings.Join(dec.Findings, "\n"))
	}
}

// TestAggregateReceiptForgedProofRejected: a proof for a different
// leaf, a truncated proof, and a receipt with a doctored root must all
// fail to establish an agreement.
func TestAggregateReceiptForgedProofRejected(t *testing.T) {
	fx := newAggFixture(t)

	// Wrong leaf: txn 2's evidence under txn 0's proof.
	c := fx.aggCase(t, 2)
	wrong, err := fx.res.Proof(0)
	if err != nil {
		t.Fatal(err)
	}
	c.AggProof = wrong
	if dec := fx.arb.Decide(c); dec.Verdict != arbitrator.VerdictNoAgreement {
		t.Fatalf("wrong-leaf proof: verdict = %v, want no-agreement", dec.Verdict)
	}

	// Doctored proof path: flip a byte in one sibling hash.
	c = fx.aggCase(t, 2)
	forged := &merkle.Proof{Index: c.AggProof.Index, LeafCount: c.AggProof.LeafCount}
	for _, s := range c.AggProof.Steps {
		forged.Steps = append(forged.Steps, merkle.ProofStep{Sibling: s.Sibling.Clone(), Left: s.Left})
	}
	forged.Steps[0].Sibling.Sum[0] ^= 0xff
	c.AggProof = forged
	dec := fx.arb.Decide(c)
	if dec.Verdict != arbitrator.VerdictNoAgreement {
		t.Fatalf("doctored proof: verdict = %v, want no-agreement", dec.Verdict)
	}
	joined := strings.Join(dec.Findings, "\n")
	if !strings.Contains(joined, "inclusion proof FAILED") {
		t.Errorf("findings do not explain the proof failure:\n%s", joined)
	}

	// Doctored receipt: a rewritten root invalidates the signature.
	c = fx.aggCase(t, 2)
	doctored := *fx.res.Receipt
	doctored.Root = doctored.Root.Clone()
	doctored.Root.Sum[0] ^= 0xff
	c.AggReceipt = &doctored
	if dec := fx.arb.Decide(c); dec.Verdict != arbitrator.VerdictNoAgreement {
		t.Fatalf("doctored receipt: verdict = %v, want no-agreement", dec.Verdict)
	}

	// Receipt signed by the wrong party.
	c = fx.aggCase(t, 2)
	misattributed := *fx.res.Receipt
	misattributed.SignerID = deploy.TTPName
	c.AggReceipt = &misattributed
	if dec := fx.arb.Decide(c); dec.Verdict != arbitrator.VerdictNoAgreement {
		t.Fatalf("misattributed receipt: verdict = %v, want no-agreement", dec.Verdict)
	}
}
