// Package arbitrator implements the fourth TPNR role (Fig. 6a, 6d):
// the off-line judge that settles repudiation disputes over archived
// evidence. "If disputation happens, the Arbitrator can ask Alice and
// Bob to provide evidence for judging" (§4.4).
//
// The arbitrator answers the two §2.4 questions:
//
//   - Integrity/repudiation: when downloaded data differs from what was
//     uploaded, WHO is at fault? The agreed digest — signed by Alice in
//     the NRO and by Bob in the NRR — pins the answer: if the provider
//     cannot produce data matching the digest both parties signed, the
//     provider is at fault.
//   - Blackmail: when a user claims loss but the provider produces data
//     matching the agreed digest, the claim is exposed as false.
package arbitrator

import (
	"bytes"
	"crypto/rsa"
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/cryptoutil"
	"repro/internal/evidence"
	"repro/internal/merkle"
	"repro/internal/pki"
)

// Verdict is the arbitrator's ruling.
type Verdict int

// Rulings, from the respondent's (provider's) perspective.
const (
	// VerdictProviderFault: the provider signed a receipt for data it
	// can no longer produce — integrity loss attributable to the
	// provider.
	VerdictProviderFault Verdict = iota + 1
	// VerdictClaimFalse: the produced data matches the agreed digest;
	// the claimant's loss/tampering claim is false (the blackmail case).
	VerdictClaimFalse
	// VerdictClaimUnsupported: the claimant's submitted evidence does
	// not verify or does not concern the claimed transaction.
	VerdictClaimUnsupported
	// VerdictAborted: the transaction was provably aborted; no storage
	// obligation exists.
	VerdictAborted
	// VerdictNoAgreement: no mutually signed digest exists (e.g. the
	// NRR was never issued and no TTP statement covers the gap), so no
	// party can be held to a storage obligation.
	VerdictNoAgreement
	// VerdictProviderUnresponsive: a TTP statement shows the provider
	// received the data but refused to answer the resolve — the
	// provider bears the burden.
	VerdictProviderUnresponsive
	// VerdictAuditFailed: the respondent committed to a Merkle root
	// inside its signed NRR, a valid storage-dwell challenge exists,
	// and no valid response was produced inside the deadline — the
	// respondent cannot prove it still holds the data (DESIGN.md §14).
	// Conviction requires no download: the journaled challenge/response
	// evidence alone settles it.
	VerdictAuditFailed
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictProviderFault:
		return "provider-at-fault"
	case VerdictClaimFalse:
		return "claim-false"
	case VerdictClaimUnsupported:
		return "claim-unsupported"
	case VerdictAborted:
		return "transaction-aborted"
	case VerdictNoAgreement:
		return "no-agreement"
	case VerdictProviderUnresponsive:
		return "provider-unresponsive"
	case VerdictAuditFailed:
		return "audit-failed"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Case is a dispute submission. Either party may be the claimant; the
// field names follow the common case (client claims against provider).
type Case struct {
	TxnID        string
	ObjectKey    string
	ClaimantID   string
	RespondentID string

	// ClaimantNRO is the claimant's own origin evidence (signed by the
	// claimant).
	ClaimantNRO *evidence.Evidence
	// ClaimantNRR is the receipt the claimant received (signed by the
	// respondent).
	ClaimantNRR *evidence.Evidence
	// RespondentNRR is the respondent's own copy of the receipt.
	RespondentNRR *evidence.Evidence
	// AbortReceipt, if present, is a respondent-signed abort acceptance.
	AbortReceipt *evidence.Evidence
	// TTPStatement, if present, is a TTP-signed resolve outcome.
	TTPStatement *evidence.Evidence

	// AggReceipt and AggProof, if present, substitute for a per-upload
	// NRR: the respondent's aggregated session receipt plus the Merkle
	// inclusion proof placing the claimant's NRO under its signed root.
	// A valid pair is a respondent acknowledgment of the NRO — digests
	// included — equivalent to an individual receipt.
	AggReceipt *evidence.AggregateReceipt
	AggProof   *merkle.Proof

	// AuditChallenge, if present, is a challenger-signed storage-dwell
	// challenge (KindAuditChallenge; the challenge parameters ride in
	// its header Note — see internal/audit). AuditResponse, if present,
	// is the respondent's signed answer (KindAuditResponse). Together
	// with the root commitment inside the NRR they let the arbitrator
	// judge dwell integrity from archived evidence alone.
	AuditChallenge *evidence.Evidence
	AuditResponse  *evidence.Evidence
	// AuditOnly marks a dispute that contests ONLY dwell integrity: no
	// production of the object was demanded, so nil ProducedData means
	// "nobody asked", not "the respondent could not produce". Only an
	// audit-only case can end at VerdictClaimFalse on the strength of a
	// valid audit response alone; otherwise a verified response merely
	// clears the dwell period and the produced-data judgment still runs.
	AuditOnly bool

	// ProducedData is the data the respondent produces at arbitration
	// (what the store currently holds); nil when the respondent cannot
	// or will not produce anything.
	ProducedData []byte
}

// Decision is the arbitrator's output: the verdict plus a findings
// transcript explaining each verification step (the Fig. 6d
// "arbitrate" interaction rendered as text).
type Decision struct {
	Verdict  Verdict
	Findings []string
	// AgreedMD5 is the mutually signed digest, when one was established.
	AgreedMD5 cryptoutil.Digest
}

// Arbitrator validates certificates and signatures against the same CA
// as the protocol parties. It holds no protocol state: everything it
// needs arrives in the Case. (The verification cache is a memo of
// successful checks, not state a Case outcome depends on — disputed
// evidence is resubmitted across hearings, and re-ruling on an
// amended Case re-verifies only what changed.)
type Arbitrator struct {
	caKey  cryptoutil.PublicKey
	dir    func(name string) (*pki.Certificate, error)
	now    func() time.Time
	vcache *evidence.VerifyCache
}

// NewWithKey constructs an arbitrator trusting the given CA key handle
// (any scheme).
func NewWithKey(caKey cryptoutil.PublicKey, dir func(string) (*pki.Certificate, error), now func() time.Time) *Arbitrator {
	if now == nil {
		now = time.Now
	}
	return &Arbitrator{caKey: caKey, dir: dir, now: now, vcache: evidence.NewVerifyCache(256)}
}

// New constructs an arbitrator from a raw RSA CA key.
//
// Deprecated: use NewWithKey, which accepts any signature scheme.
func New(caKey *rsa.PublicKey, dir func(string) (*pki.Certificate, error), now func() time.Time) *Arbitrator {
	return NewWithKey(cryptoutil.NewRSAPublicKey(caKey), dir, now)
}

// partyKey resolves and validates a party's public key. The
// certificate is validated AT THE EVIDENCE'S TIMESTAMP, not at dispute
// time: disputes legitimately arrive long after a session — possibly
// after the signer's certificate expired — and what matters is that
// the certificate was valid when the evidence was produced.
func (a *Arbitrator) partyKey(name string, at time.Time) (cryptoutil.PublicKey, error) {
	cert, err := a.dir(name)
	if err != nil {
		return nil, err
	}
	if at.IsZero() {
		at = a.now()
	}
	if err := pki.VerifyCertificateWith(a.caKey, cert, at, nil); err != nil {
		return nil, err
	}
	return cert.Key()
}

// verify checks one evidence item: signatures under the expected
// signer (whose certificate must have been valid at the evidence's
// timestamp), and transaction binding.
func (a *Arbitrator) verify(ev *evidence.Evidence, signer, txn string, findings *[]string, label string) bool {
	if ev == nil {
		*findings = append(*findings, fmt.Sprintf("%s: not submitted", label))
		return false
	}
	key, err := a.partyKey(signer, ev.Header.Timestamp)
	if err != nil {
		*findings = append(*findings, fmt.Sprintf("%s: signer %q has no valid certificate: %v", label, signer, err))
		return false
	}
	if ev.Header.SenderID != signer {
		*findings = append(*findings, fmt.Sprintf("%s: evidence names sender %q, expected %q", label, ev.Header.SenderID, signer))
		return false
	}
	if ev.Header.TxnID != txn {
		*findings = append(*findings, fmt.Sprintf("%s: evidence concerns transaction %q, claim is about %q", label, ev.Header.TxnID, txn))
		return false
	}
	if err := ev.VerifyCachedWith(key, a.vcache); err != nil {
		*findings = append(*findings, fmt.Sprintf("%s: signature verification FAILED: %v", label, err))
		return false
	}
	*findings = append(*findings, fmt.Sprintf("%s: signatures valid (signer %s, txn %s)", label, signer, txn))
	return true
}

// verifyAggregate checks the aggregated-receipt substitute for an
// individual NRR: the receipt must be respondent-signed (certificate
// valid at the receipt's timestamp) and the inclusion proof must bind
// the claimant's NRO into the signed Merkle root at the leaf naming
// the disputed transaction.
func (a *Arbitrator) verifyAggregate(c *Case, nro *evidence.Evidence, f *[]string) bool {
	if c.AggReceipt == nil {
		return false
	}
	r := c.AggReceipt
	if r.SignerID != c.RespondentID {
		*f = append(*f, fmt.Sprintf("aggregate receipt signed by %q, expected respondent %q", r.SignerID, c.RespondentID))
		return false
	}
	key, err := a.partyKey(c.RespondentID, r.Timestamp)
	if err != nil {
		*f = append(*f, fmt.Sprintf("aggregate receipt: signer %q has no valid certificate: %v", c.RespondentID, err))
		return false
	}
	if err := r.VerifySig(key); err != nil {
		*f = append(*f, fmt.Sprintf("aggregate receipt: signature verification FAILED: %v", err))
		return false
	}
	if c.AggProof == nil {
		*f = append(*f, "aggregate receipt submitted without an inclusion proof")
		return false
	}
	if err := r.VerifyLeaf(nro, c.AggProof); err != nil {
		*f = append(*f, fmt.Sprintf("aggregate receipt: inclusion proof FAILED: %v", err))
		return false
	}
	*f = append(*f, fmt.Sprintf("aggregate receipt valid: session %s leaf %d covers txn %s", r.SessionID, c.AggProof.Index, c.TxnID))
	return true
}

// Decide rules on a dispute.
func (a *Arbitrator) Decide(c *Case) *Decision {
	d := &Decision{}
	f := &d.Findings

	// 1. The claimant's own commitment must stand: without a valid NRO
	// there is no claim.
	if !a.verify(c.ClaimantNRO, c.ClaimantID, c.TxnID, f, "claimant NRO") {
		d.Verdict = VerdictClaimUnsupported
		return d
	}
	nro := c.ClaimantNRO

	// 2. A provably aborted transaction carries no storage obligation.
	if c.AbortReceipt != nil {
		if a.verify(c.AbortReceipt, c.RespondentID, c.TxnID, f, "abort receipt") &&
			c.AbortReceipt.Header.Kind == evidence.KindAbortAccept {
			*f = append(*f, "transaction was aborted by mutual evidence; no storage obligation")
			d.Verdict = VerdictAborted
			return d
		}
	}

	// 3. Establish the agreed digest from a respondent-signed receipt:
	// an individual NRR, or an aggregated session receipt whose signed
	// Merkle root provably includes the claimant's NRO.
	nrr := c.ClaimantNRR
	label := "claimant-submitted NRR"
	if nrr == nil {
		nrr = c.RespondentNRR
		label = "respondent-submitted NRR"
	}
	agreed := false
	// committedNRR is the verified receipt whose Note may carry the
	// storage-dwell root commitment (nil when agreement came via an
	// aggregated receipt, which acknowledges the NRO, not a root).
	var committedNRR *evidence.Evidence
	if nrr != nil && a.verify(nrr, c.RespondentID, c.TxnID, f, label) {
		if nrr.Header.Kind != evidence.KindNRR {
			*f = append(*f, fmt.Sprintf("receipt evidence has kind %s, want NRR", nrr.Header.Kind))
			d.Verdict = VerdictNoAgreement
			return d
		}
		// 4. NRO and NRR must commit to the same digests — otherwise
		// there was never an agreement.
		if !nro.Header.DataMD5.Equal(nrr.Header.DataMD5) || !nro.Header.DataSHA256.Equal(nrr.Header.DataSHA256) {
			*f = append(*f, "NRO and NRR digests disagree: the parties never agreed on a value")
			d.Verdict = VerdictNoAgreement
			return d
		}
		agreed = true
		committedNRR = nrr
	} else if a.verifyAggregate(c, nro, f) {
		// The aggregate receipt acknowledges the NRO evidence itself —
		// digests included — so the NRO's digests ARE the agreed value.
		agreed = true
	}
	if !agreed {
		// No receipt: check for a TTP statement covering the gap.
		if c.TTPStatement != nil && a.verify(c.TTPStatement, c.TTPStatement.Header.SenderID, c.TxnID, f, "TTP statement") {
			if c.TTPStatement.Header.Note == "peer-unresponsive" {
				*f = append(*f, "TTP attests the respondent refused to answer a resolve query")
				d.Verdict = VerdictProviderUnresponsive
				return d
			}
			*f = append(*f, fmt.Sprintf("TTP statement notes %q; no receipt obligation established", c.TTPStatement.Header.Note))
		}
		*f = append(*f, "no mutually signed digest exists for this transaction")
		d.Verdict = VerdictNoAgreement
		return d
	}
	d.AgreedMD5 = nro.Header.DataMD5.Clone()
	*f = append(*f, fmt.Sprintf("agreed digest established: %s (and sha256:%s)", d.AgreedMD5, nro.Header.DataSHA256.Hex()))

	// 4a. Storage-dwell audit ruling (DESIGN.md §14). The receipt's
	// root commitment binds the respondent to answer random leaf
	// challenges over the dwell time; a valid challenge with no valid
	// response inside the deadline convicts without any download.
	if c.AuditChallenge != nil {
		if v, decided := a.decideAudit(c, committedNRR, f); decided {
			d.Verdict = v
			return d
		}
	}

	// 5. Judge the produced data against the agreed digest.
	if c.ProducedData == nil {
		*f = append(*f, "respondent produced no data for the agreed digest")
		d.Verdict = VerdictProviderFault
		return d
	}
	ds := cryptoutil.SumParallel(c.ProducedData, cryptoutil.MD5, cryptoutil.SHA256)
	md5Match := ds[0].Equal(nro.Header.DataMD5)
	shaMatch := ds[1].Equal(nro.Header.DataSHA256)
	switch {
	case md5Match && shaMatch:
		*f = append(*f, "produced data matches the agreed digest: storage obligation met")
		d.Verdict = VerdictClaimFalse
	default:
		*f = append(*f, fmt.Sprintf("produced data does NOT match the agreed digest (md5 match=%v, sha256 match=%v)", md5Match, shaMatch))
		d.Verdict = VerdictProviderFault
	}
	return d
}

// decideAudit rules on a storage-dwell audit claim. It returns
// (verdict, true) when the audit evidence settles the case by itself,
// or (0, false) when the dispute must continue to the produced-data
// judgment (the audit claim is unusable, or the response is valid and
// only exonerates the dwell period).
//
// The burden allocation mirrors §4.4: the challenge must be
// challenger-signed and well-formed before it can put the respondent
// on the hook; once it is, the respondent convicts itself by silence,
// lateness, or an answer that fails to open the committed root.
func (a *Arbitrator) decideAudit(c *Case, nrr *evidence.Evidence, f *[]string) (Verdict, bool) {
	// The challenge may come from the claimant or from the TTP acting
	// as public auditor; either way it must be signed by whoever it
	// names as sender and must target the respondent.
	challenger := c.AuditChallenge.Header.SenderID
	if challenger == c.RespondentID {
		*f = append(*f, "audit challenge names the respondent as challenger; audit claim ignored")
		return 0, false
	}
	if !a.verify(c.AuditChallenge, challenger, c.TxnID, f, "audit challenge") {
		return 0, false
	}
	if c.AuditChallenge.Header.Kind != evidence.KindAuditChallenge ||
		c.AuditChallenge.Header.RecipientID != c.RespondentID {
		*f = append(*f, "audit challenge evidence is not a challenge addressed to the respondent; ignored")
		return 0, false
	}
	ch, err := audit.ParseChallengeNote(c.AuditChallenge.Header.Note)
	if err != nil {
		*f = append(*f, fmt.Sprintf("audit challenge note unparseable: %v; audit claim ignored", err))
		return 0, false
	}
	if nrr == nil {
		*f = append(*f, "agreement rests on an aggregated receipt with no per-object root commitment; dwell integrity cannot be judged")
		return 0, false
	}
	root, _, err := audit.ParseRootNote(nrr.Header.Note)
	if err != nil {
		*f = append(*f, "the NRR carries no storage-dwell commitment; dwell integrity cannot be judged")
		return 0, false
	}
	*f = append(*f, fmt.Sprintf("respondent committed to root %s in its signed NRR; challenge covers %d leaves", root, len(ch.Indices)))

	// Silence convicts only past a journaled deadline: the claimant
	// controls when it submits the dispute, so without a deadline — or
	// before it lapses — an unanswered challenge proves nothing (the
	// claimant may have journaled a challenge it never sent, or the
	// answer may still be in flight). A submitted "response" that is
	// unauthenticated, the wrong kind, or echoes a different nonce is
	// not an answer to THIS challenge and falls back to the same rule:
	// otherwise a claimant holding a stale round's response could
	// bypass the deadline entirely.
	silence := func(why string) (Verdict, bool) {
		*f = append(*f, why)
		deadline := c.AuditChallenge.Header.TimeLimit
		if deadline.IsZero() {
			*f = append(*f, "audit challenge carries no response deadline; silence cannot convict — audit claim ignored")
			return 0, false
		}
		if a.now().Before(deadline) {
			*f = append(*f, fmt.Sprintf("audit challenge response deadline %s has not passed; silence does not yet convict", deadline.Format(time.RFC3339)))
			return 0, false
		}
		*f = append(*f, fmt.Sprintf("no audit response answers a valid challenge whose deadline %s has lapsed: the respondent never proved continued possession", deadline.Format(time.RFC3339)))
		return VerdictAuditFailed, true
	}
	if c.AuditResponse == nil {
		return silence("NO audit response was submitted")
	}
	if !a.verify(c.AuditResponse, c.RespondentID, c.TxnID, f, "audit response") {
		return silence("the submitted audit response is not authentically the respondent's; treating the challenge as unanswered")
	}
	if c.AuditResponse.Header.Kind != evidence.KindAuditResponse {
		return silence(fmt.Sprintf("submitted audit response has kind %s, want audit-response; treating the challenge as unanswered", c.AuditResponse.Header.Kind))
	}
	resp, err := audit.ParseResponseNote(c.AuditResponse.Header.Note)
	if err != nil {
		*f = append(*f, fmt.Sprintf("audit response note unparseable: %v", err))
		return VerdictAuditFailed, true
	}
	if !bytes.Equal(resp.Nonce, ch.Nonce) {
		return silence("the submitted audit response echoes a different nonce — it answers some other challenge; treating this challenge as unanswered")
	}
	if deadline := c.AuditChallenge.Header.TimeLimit; !deadline.IsZero() &&
		c.AuditResponse.Header.Timestamp.After(deadline) {
		*f = append(*f, fmt.Sprintf("audit response came at %s, after the challenge deadline %s",
			c.AuditResponse.Header.Timestamp.Format(time.RFC3339), deadline.Format(time.RFC3339)))
		return VerdictAuditFailed, true
	}
	respKey, err := a.partyKey(c.RespondentID, c.AuditResponse.Header.Timestamp)
	if err != nil {
		*f = append(*f, fmt.Sprintf("audit response: respondent %q has no valid certificate: %v", c.RespondentID, err))
		return VerdictAuditFailed, true
	}
	if err := resp.Verify(respKey, ch, root); err != nil {
		*f = append(*f, fmt.Sprintf("audit response FAILS against the committed root: %v", err))
		return VerdictAuditFailed, true
	}
	*f = append(*f, fmt.Sprintf("audit response proves all %d challenged leaves against the committed root", len(ch.Indices)))
	if c.AuditOnly {
		// The dispute contests only dwell integrity, the respondent
		// proved possession, and no download is in question — the claim
		// is false.
		*f = append(*f, "audit-only dispute; the dwell-integrity claim is disproven")
		return VerdictClaimFalse, true
	}
	// The verified response clears the dwell period but the case also
	// demands production: a provider that once passed an audit and has
	// since lost the object must still answer for the data itself, so
	// the produced-data judgment proceeds.
	return 0, false
}
