package arbitrator_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/arbitrator"
	"repro/internal/archive"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/evidence"
)

// lateArb is an arbitrator hearing the dispute a day later — past any
// challenge's journaled response deadline, the realistic timeline for
// a storage-dwell dispute.
func lateArb(fx *fixture) *arbitrator.Arbitrator {
	return arbitrator.New(fx.d.CA.PublicKey(), fx.d.CA.Lookup,
		func() time.Time { return time.Now().Add(24 * time.Hour) })
}

func clientEv(t *testing.T, fx *fixture, role evidence.Role, kind evidence.Kind) *evidence.Evidence {
	t.Helper()
	ev, err := fx.d.Client.Archive().ByKind("txn-dispute", role, kind)
	if err != nil {
		t.Fatalf("client archive holds no %s/%s: %v", role, kind, err)
	}
	return ev
}

// TestAuditSilenceConvictsOnlyPastDeadline: an unanswered challenge is
// conviction material only once its journaled TimeLimit lapses. Before
// that, the claimant controls when the dispute is heard — it could
// journal a challenge and run straight to the arbitrator (or the
// answer could still be in flight), so silence proves nothing yet.
func TestAuditSilenceConvictsOnlyPastDeadline(t *testing.T) {
	fx := newFixture(t)
	fx.d.Provider.SetMisbehavior(core.Misbehavior{IgnoreAudit: true})
	if _, err := fx.d.Client.AuditObject(context.Background(), fx.conn, "txn-dispute", 2); err == nil {
		t.Fatal("lazy provider answered the audit")
	}
	fx.d.Provider.SetMisbehavior(core.Misbehavior{})

	c := fx.baseCase()
	c.AuditChallenge = clientEv(t, fx, evidence.RoleOwn, evidence.KindAuditChallenge)
	c.ProducedData = fx.produced(t) // the object itself is intact

	// Heard immediately: the response window is still open, so the
	// unanswered challenge cannot convict and the matching produced
	// data defeats the claim.
	dec := fx.arb.Decide(c)
	if dec.Verdict != arbitrator.VerdictClaimFalse {
		t.Fatalf("pre-deadline verdict = %v, want claim-false\n%s", dec.Verdict, strings.Join(dec.Findings, "\n"))
	}
	joined := strings.Join(dec.Findings, "\n")
	if !strings.Contains(joined, "deadline") {
		t.Errorf("findings do not explain the open deadline:\n%s", joined)
	}

	// Heard after the deadline: silence against a valid challenge now
	// convicts, produced data or not — the provider provably never
	// proved possession inside the window it signed up for.
	if dec := lateArb(fx).Decide(c); dec.Verdict != arbitrator.VerdictAuditFailed {
		t.Fatalf("post-deadline verdict = %v, want audit-failed\n%s", dec.Verdict, strings.Join(dec.Findings, "\n"))
	}
}

// TestForgedAuditDeadlineRejected: a claimant cannot shorten (or
// strip) the challenge's deadline after the fact to convict early —
// the TimeLimit rides under the challenge signature.
func TestForgedAuditDeadlineRejected(t *testing.T) {
	fx := newFixture(t)
	fx.d.Provider.SetMisbehavior(core.Misbehavior{IgnoreAudit: true})
	if _, err := fx.d.Client.AuditObject(context.Background(), fx.conn, "txn-dispute", 2); err == nil {
		t.Fatal("lazy provider answered the audit")
	}
	fx.d.Provider.SetMisbehavior(core.Misbehavior{})

	ch := clientEv(t, fx, evidence.RoleOwn, evidence.KindAuditChallenge)
	forged := *ch
	fh := *ch.Header
	fh.TimeLimit = time.Now().Add(-time.Hour) // pretend it lapsed already
	forged.Header = &fh

	c := fx.baseCase()
	c.AuditChallenge = &forged
	c.ProducedData = fx.produced(t)
	dec := fx.arb.Decide(c)
	if dec.Verdict != arbitrator.VerdictClaimFalse {
		t.Fatalf("verdict = %v, want claim-false (forged challenge ignored)\n%s", dec.Verdict, strings.Join(dec.Findings, "\n"))
	}
}

// TestAuditPassDoesNotExcuseNonProduction: a provider that once passed
// an audit (pool sweeps run automatically) but has since lost the
// object must still convict when it produces nothing at arbitration.
// Only an explicitly audit-only dispute ends at claim-false on the
// strength of the response alone.
func TestAuditPassDoesNotExcuseNonProduction(t *testing.T) {
	fx := newFixture(t)
	if _, err := fx.d.Client.AuditObject(context.Background(), fx.conn, "txn-dispute", 2); err != nil {
		t.Fatalf("honest audit failed: %v", err)
	}
	ch := clientEv(t, fx, evidence.RoleOwn, evidence.KindAuditChallenge)
	resp := clientEv(t, fx, evidence.RolePeer, evidence.KindAuditResponse)

	fx.d.Store.Delete("finance/records")
	c := fx.baseCase()
	c.AuditChallenge, c.AuditResponse = ch, resp
	c.ProducedData = fx.produced(t) // nil: the object is gone
	dec := lateArb(fx).Decide(c)
	if dec.Verdict != arbitrator.VerdictProviderFault {
		t.Fatalf("verdict = %v, want provider-at-fault (audit pass must not excuse non-production)\n%s",
			dec.Verdict, strings.Join(dec.Findings, "\n"))
	}

	// The same evidence in an audit-only dispute (no production was
	// demanded) exonerates: the response proved possession.
	c.AuditOnly = true
	if dec := lateArb(fx).Decide(c); dec.Verdict != arbitrator.VerdictClaimFalse {
		t.Fatalf("audit-only verdict = %v, want claim-false\n%s", dec.Verdict, strings.Join(dec.Findings, "\n"))
	}
}

// TestStaleResponseCannotBypassDeadline: pairing a stale round's
// response with a newer challenge directly in the Case must not fast-
// track a conviction before the challenge's deadline — the mismatched
// nonce means the challenge is simply unanswered, so the silence rule
// governs. Without this, a claimant holding any old response could
// convict instantly, sidestepping the deadline rule entirely.
func TestStaleResponseCannotBypassDeadline(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	const txn = "txn-dispute"

	if _, err := fx.d.Client.AuditObject(ctx, fx.conn, txn, 2); err != nil {
		t.Fatalf("audit round 1: %v", err)
	}
	resp1 := clientEv(t, fx, evidence.RolePeer, evidence.KindAuditResponse)

	fx.d.Provider.SetMisbehavior(core.Misbehavior{IgnoreAudit: true})
	if _, err := fx.d.Client.AuditObject(ctx, fx.conn, txn, 2); err == nil {
		t.Fatal("lazy provider answered the audit")
	}
	fx.d.Provider.SetMisbehavior(core.Misbehavior{})
	ch2 := clientEv(t, fx, evidence.RoleOwn, evidence.KindAuditChallenge)

	c := fx.baseCase()
	c.AuditChallenge, c.AuditResponse = ch2, resp1
	c.ProducedData = fx.produced(t)

	// Heard inside round 2's response window: the stale response is not
	// an answer to ch2, the window is still open, and the intact object
	// defeats the claim.
	dec := fx.arb.Decide(c)
	if dec.Verdict != arbitrator.VerdictClaimFalse {
		t.Fatalf("pre-deadline verdict = %v, want claim-false\n%s", dec.Verdict, strings.Join(dec.Findings, "\n"))
	}

	// Heard after the window: the challenge is genuinely unanswered and
	// the stale response does nothing to save the provider.
	if dec := lateArb(fx).Decide(c); dec.Verdict != arbitrator.VerdictAuditFailed {
		t.Fatalf("post-deadline verdict = %v, want audit-failed\n%s", dec.Verdict, strings.Join(dec.Findings, "\n"))
	}
}

// TestColdCasePairsAuditResponseByNonce reproduces the multi-round
// trap: after several audit rounds, picking the newest challenge and
// the newest response a bundle happens to hold can pair challenge N
// with stale response N-1 — a nonce mismatch that convicts an honest
// provider. Worse, if the provider's reply to round N was lost in
// flight (crash after journaling), the claimant's stale copy used to
// shadow the respondent's journaled answer. CaseFromBundles must pair
// by nonce across BOTH bundles.
func TestColdCasePairsAuditResponseByNonce(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	const txn = "txn-dispute"

	// Round 1: honest — claimant journals ch1 + resp1.
	if _, err := fx.d.Client.AuditObject(ctx, fx.conn, txn, 2); err != nil {
		t.Fatalf("audit round 1: %v", err)
	}
	ch1 := clientEv(t, fx, evidence.RoleOwn, evidence.KindAuditChallenge)
	resp1 := clientEv(t, fx, evidence.RolePeer, evidence.KindAuditResponse)
	resp1p, err := fx.d.Engine.EvidenceByKind(txn, evidence.RoleOwn, evidence.KindAuditResponse)
	if err != nil {
		t.Fatalf("provider's own round-1 response: %v", err)
	}

	// Round 2: honest again — but the reply never reaches the claimant
	// (modeled below by leaving resp2 out of the claimant bundle; the
	// provider journaled its copy before sending).
	if _, err := fx.d.Client.AuditObject(ctx, fx.conn, txn, 2); err != nil {
		t.Fatalf("audit round 2: %v", err)
	}
	ch2 := clientEv(t, fx, evidence.RoleOwn, evidence.KindAuditChallenge)
	resp2p, err := fx.d.Engine.EvidenceByKind(txn, evidence.RoleOwn, evidence.KindAuditResponse)
	if err != nil {
		t.Fatalf("provider's own round-2 response: %v", err)
	}
	wantCh, err := audit.ParseChallengeNote(ch2.Header.Note)
	if err != nil {
		t.Fatal(err)
	}

	nro := fx.up.NRO
	nrr := fx.up.NRR
	nrrOwn, err := fx.d.Engine.EvidenceByKind(txn, evidence.RoleOwn, evidence.KindNRR)
	if err != nil {
		t.Fatal(err)
	}
	item := func(role evidence.Role, ev *evidence.Evidence) archive.Item {
		return archive.Item{Role: uint8(role), Blob: ev.Encode()}
	}
	// Claimant bundle in arrival order: round 2's reply is missing, so
	// its newest response is the stale resp1.
	cb := &archive.Bundle{Txn: txn, Items: []archive.Item{
		item(evidence.RoleOwn, nro),
		item(evidence.RolePeer, nrr),
		item(evidence.RoleOwn, ch1),
		item(evidence.RolePeer, resp1),
		item(evidence.RoleOwn, ch2),
	}}
	pb := &archive.Bundle{Txn: txn, Items: []archive.Item{
		item(evidence.RoleOwn, nrrOwn),
		item(evidence.RoleOwn, resp1p),
		item(evidence.RoleOwn, resp2p),
	}}

	c, err := arbitrator.CaseFromBundles(cb, pb, fx.produced(t))
	if err != nil {
		t.Fatal(err)
	}
	if c.AuditResponse == nil {
		t.Fatal("no audit response paired; the respondent's journaled answer was never consulted")
	}
	got, err := audit.ParseResponseNote(c.AuditResponse.Header.Note)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Nonce, wantCh.Nonce) {
		t.Fatal("paired response answers a different challenge's nonce (stale round)")
	}
	dec := lateArb(fx).Decide(c)
	if dec.Verdict != arbitrator.VerdictClaimFalse {
		t.Fatalf("verdict = %v, want claim-false — honest provider convicted on a stale pairing\n%s",
			dec.Verdict, strings.Join(dec.Findings, "\n"))
	}
}

// TestColdCaseUnansweredChallengeStillConvicts: the nonce pairing must
// not weaken the lazy-provider conviction — a genuinely unanswered
// newest challenge (both bundles silent on its nonce) still convicts
// once its deadline lapses, even though an older round was answered.
func TestColdCaseUnansweredChallengeStillConvicts(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	const txn = "txn-dispute"

	if _, err := fx.d.Client.AuditObject(ctx, fx.conn, txn, 2); err != nil {
		t.Fatalf("audit round 1: %v", err)
	}
	ch1 := clientEv(t, fx, evidence.RoleOwn, evidence.KindAuditChallenge)
	resp1 := clientEv(t, fx, evidence.RolePeer, evidence.KindAuditResponse)

	fx.d.Provider.SetMisbehavior(core.Misbehavior{IgnoreAudit: true})
	if _, err := fx.d.Client.AuditObject(ctx, fx.conn, txn, 2); err == nil {
		t.Fatal("lazy provider answered the audit")
	}
	fx.d.Provider.SetMisbehavior(core.Misbehavior{})
	ch2 := clientEv(t, fx, evidence.RoleOwn, evidence.KindAuditChallenge)

	item := func(role evidence.Role, ev *evidence.Evidence) archive.Item {
		return archive.Item{Role: uint8(role), Blob: ev.Encode()}
	}
	cb := &archive.Bundle{Txn: txn, Items: []archive.Item{
		item(evidence.RoleOwn, fx.up.NRO),
		item(evidence.RolePeer, fx.up.NRR),
		item(evidence.RoleOwn, ch1),
		item(evidence.RolePeer, resp1),
		item(evidence.RoleOwn, ch2),
	}}
	c, err := arbitrator.CaseFromBundles(cb, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.AuditResponse != nil {
		t.Fatal("stale round-1 response paired with the unanswered round-2 challenge")
	}
	dec := lateArb(fx).Decide(c)
	if dec.Verdict != arbitrator.VerdictAuditFailed {
		t.Fatalf("verdict = %v, want audit-failed\n%s", dec.Verdict, strings.Join(dec.Findings, "\n"))
	}
}
