package workload

import (
	"testing"
)

func TestRunCleanWorkload(t *testing.T) {
	s, err := Run(Params{Objects: 20, MinSize: 32, MaxSize: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Uploads != 20 || s.Downloads != 20 {
		t.Fatalf("uploads=%d downloads=%d", s.Uploads, s.Downloads)
	}
	if s.CleanDownloadsOK != 20 {
		t.Fatalf("clean downloads = %d, want 20", s.CleanDownloadsOK)
	}
	if s.TampersInjected != 0 || len(s.Verdicts) != 0 {
		t.Fatalf("clean run produced incidents: %+v", s)
	}
	if s.TTPMsgs != 0 {
		t.Fatalf("clean run involved the TTP: %d msgs", s.TTPMsgs)
	}
}

// TestRunDetectsAllTampers is the protocol's population-level promise:
// 100% detection AND 100% attribution at any tamper rate.
func TestRunDetectsAllTampers(t *testing.T) {
	s, err := Run(Params{Objects: 30, MinSize: 32, MaxSize: 128, TamperRate: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.TampersInjected == 0 {
		t.Fatal("seed produced no tampers; pick another seed")
	}
	if s.TampersDetected != s.TampersInjected {
		t.Fatalf("detected %d of %d tampers", s.TampersDetected, s.TampersInjected)
	}
	if s.TampersAttributed != s.TampersInjected {
		t.Fatalf("attributed %d of %d tampers", s.TampersAttributed, s.TampersInjected)
	}
	if got := s.Verdicts["provider-at-fault"]; got != s.TampersInjected {
		t.Fatalf("provider-at-fault verdicts = %d, want %d", got, s.TampersInjected)
	}
}

func TestRunExposesAllFalseClaims(t *testing.T) {
	s, err := Run(Params{Objects: 30, MinSize: 32, MaxSize: 128, FalseClaimRate: 0.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.FalseClaims == 0 {
		t.Fatal("seed produced no false claims")
	}
	if s.FalseClaimsExposed != s.FalseClaims {
		t.Fatalf("exposed %d of %d false claims", s.FalseClaimsExposed, s.FalseClaims)
	}
}

func TestRunMixedIncidents(t *testing.T) {
	s, err := Run(Params{Objects: 40, MinSize: 16, MaxSize: 64, TamperRate: 0.25, FalseClaimRate: 0.25, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.TampersDetected != s.TampersInjected || s.FalseClaimsExposed != s.FalseClaims {
		t.Fatalf("mixed run imperfect: %+v", s)
	}
	// Every incident got a verdict.
	total := 0
	for _, n := range s.Verdicts {
		total += n
	}
	if total != s.TampersInjected+s.FalseClaims {
		t.Fatalf("verdicts %d != incidents %d", total, s.TampersInjected+s.FalseClaims)
	}
}

func TestRunDeterministic(t *testing.T) {
	p := Params{Objects: 15, MinSize: 16, MaxSize: 64, TamperRate: 0.3, FalseClaimRate: 0.2, Seed: 5}
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.TampersInjected != b.TampersInjected || a.FalseClaims != b.FalseClaims {
		t.Fatalf("same seed, different incidents: %+v vs %+v", a, b)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Params{Objects: 0}); err == nil {
		t.Fatal("Objects=0 accepted")
	}
}

// TestRunShardedOpenLoop drives the full incident mix through a
// 4-shard provider with Poisson arrivals: uploads land on different
// shards (by txn-ID hash), downloads and disputes still find every
// piece of evidence, and the population-level guarantees are intact.
func TestRunShardedOpenLoop(t *testing.T) {
	s, err := Run(Params{
		Objects: 30, MinSize: 16, MaxSize: 64,
		TamperRate: 0.3, FalseClaimRate: 0.2, Seed: 6,
		Shards: 4, ArrivalRate: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Uploads != 30 || s.Downloads != 30 {
		t.Fatalf("uploads=%d downloads=%d, want 30/30", s.Uploads, s.Downloads)
	}
	if s.TampersInjected == 0 || s.FalseClaims == 0 {
		t.Fatalf("seed produced no incidents: %+v", s)
	}
	if s.TampersDetected != s.TampersInjected || s.TampersAttributed != s.TampersInjected {
		t.Fatalf("sharded run lost detection/attribution: %+v", s)
	}
	if s.FalseClaimsExposed != s.FalseClaims {
		t.Fatalf("sharded run lost exposure: %+v", s)
	}
	if s.UploadElapsed <= 0 {
		t.Fatal("UploadElapsed not recorded")
	}
}
