// Package workload drives statistical experiments over the TPNR
// deployment: many objects, a configurable rate of insider tampering
// and of false client claims, full dispute resolution for every
// incident. Where the paper argues per-scenario ("assume Alice...",
// §2.4), the workload runs populations and reports rates — detection
// and attribution must both be 100% for the protocol's promise to
// hold, and the X1 experiment asserts exactly that.
package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/arbitrator"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// Params configures one workload run.
type Params struct {
	// Objects is the number of objects uploaded.
	Objects int
	// MinSize and MaxSize bound the uniform object size distribution.
	MinSize, MaxSize int
	// TamperRate is the fraction of stored objects the insider rewrites
	// (metadata fixed) between upload and download.
	TamperRate float64
	// FalseClaimRate is the fraction of UNtampered objects whose owner
	// nevertheless files a loss claim (the blackmail population).
	FalseClaimRate float64
	// Seed makes the run deterministic.
	Seed int64
	// Shards > 1 runs the provider as a core.ShardedEngine with that
	// many shards; uploads route by consistent hash of the txn ID.
	Shards int
	// ArrivalRate, when positive, switches the upload phase from
	// closed-loop (each upload waits for the previous) to open-loop:
	// uploads arrive as a Poisson process at this many per second,
	// each on its own pooled session, concurrency bounded only by the
	// arrivals themselves. Object contents and inter-arrival gaps are
	// still drawn sequentially from Seed, so runs stay deterministic
	// in everything but interleaving.
	ArrivalRate float64
}

// Stats is the outcome of a run.
type Stats struct {
	Uploads, Downloads int

	TampersInjected int
	// TampersDetected counts tampered objects whose download failed the
	// agreed-digest check.
	TampersDetected int
	// TampersAttributed counts tampered objects whose dispute ended
	// provider-at-fault.
	TampersAttributed int

	FalseClaims int
	// FalseClaimsExposed counts false claims the arbitrator ruled
	// claim-false.
	FalseClaimsExposed int

	// CleanDownloadsOK counts untampered objects that downloaded with
	// integrity verified.
	CleanDownloadsOK int

	// Verdicts tallies arbitrator rulings by name.
	Verdicts map[string]int

	// ClientMsgs and TTPMsgs aggregate protocol cost.
	ClientMsgs, TTPMsgs int64

	// UploadElapsed is the wall time of the upload phase — with an
	// ArrivalRate it shows achieved versus offered throughput.
	UploadElapsed time.Duration
}

// Run executes the workload on a fresh deployment.
func Run(p Params) (*Stats, error) {
	if p.Objects <= 0 {
		return nil, fmt.Errorf("workload: Objects must be positive")
	}
	if p.MinSize <= 0 {
		p.MinSize = 64
	}
	if p.MaxSize < p.MinSize {
		p.MaxSize = p.MinSize
	}
	rng := rand.New(rand.NewSource(p.Seed))
	ctx := context.Background()

	d, err := deploy.New(deploy.Config{
		TestKeys:        true,
		ResponseTimeout: 10 * time.Second,
		ProviderShards:  p.Shards,
	})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	conn, err := d.DialProvider()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	arb := arbitrator.NewWithKey(d.CA.Key(), d.CA.Lookup, nil)

	stats := &Stats{Verdicts: make(map[string]int)}

	type object struct {
		key      string
		txn      string
		data     []byte
		up       *core.UploadResult
		tampered bool
	}
	objects := make([]*object, p.Objects)

	// Phase 1: uploads. Contents and (open-loop) inter-arrival gaps
	// are drawn sequentially from the seeded rng before any upload
	// runs, so concurrency cannot perturb the population.
	gaps := make([]time.Duration, len(objects))
	for i := range objects {
		size := p.MinSize + rng.Intn(p.MaxSize-p.MinSize+1)
		data := make([]byte, size)
		rng.Read(data)
		objects[i] = &object{
			key:  fmt.Sprintf("wl/obj-%05d", i),
			txn:  fmt.Sprintf("wl-up-%05d", i),
			data: data,
		}
		if p.ArrivalRate > 0 {
			gaps[i] = time.Duration(rng.ExpFloat64() / p.ArrivalRate * float64(time.Second))
		}
	}
	uploadStart := time.Now()
	if p.ArrivalRate > 0 {
		// Open loop: each arrival gets its own pooled session (the pool
		// pins connections per shard when the deployment is sharded) and
		// runs regardless of how far behind earlier uploads are.
		pool := d.NewPool()
		defer pool.Close()
		var wg sync.WaitGroup
		errs := make([]error, len(objects))
		for i, o := range objects {
			time.Sleep(gaps[i])
			wg.Add(1)
			go func(i int, o *object) {
				defer wg.Done()
				up, err := pool.Upload(ctx, o.txn, o.key, o.data)
				if err != nil {
					errs[i] = fmt.Errorf("workload: upload %d: %w", i, err)
					return
				}
				o.up = up
			}(i, o)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		stats.Uploads = len(objects)
	} else {
		for i, o := range objects {
			up, err := d.Client.Upload(ctx, conn, o.txn, o.key, o.data)
			if err != nil {
				return nil, fmt.Errorf("workload: upload %d: %w", i, err)
			}
			o.up = up
			stats.Uploads++
		}
	}
	stats.UploadElapsed = time.Since(uploadStart)

	// Phase 2: the insider tampers a fraction of the stored objects.
	tam := d.Store.(storage.Tamperer)
	for _, o := range objects {
		if rng.Float64() >= p.TamperRate {
			continue
		}
		o.tampered = true
		stats.TampersInjected++
		if err := tam.Tamper(o.key, true, func(b []byte) []byte {
			if len(b) == 0 {
				return []byte{0xFF}
			}
			b[rng.Intn(len(b))] ^= 1 + byte(rng.Intn(255))
			return b
		}); err != nil {
			return nil, err
		}
	}

	// Phase 3: downloads + incident handling.
	for i, o := range objects {
		dlTxn := fmt.Sprintf("wl-dl-%05d", i)
		res, err := d.Client.Download(ctx, conn, dlTxn, o.key, o.txn)
		stats.Downloads++
		switch {
		case errors.Is(err, core.ErrIntegrity):
			if o.tampered {
				stats.TampersDetected++
			}
			// Dispute with the provider's current data.
			obj, _ := d.Store.Get(o.key)
			dec := arb.Decide(&arbitrator.Case{
				TxnID:        o.txn,
				ObjectKey:    o.key,
				ClaimantID:   deploy.ClientName,
				RespondentID: deploy.ProviderName,
				ClaimantNRO:  o.up.NRO,
				ClaimantNRR:  o.up.NRR,
				ProducedData: obj.Data,
			})
			stats.Verdicts[dec.Verdict.String()]++
			if o.tampered && dec.Verdict == arbitrator.VerdictProviderFault {
				stats.TampersAttributed++
			}
		case err != nil:
			return nil, fmt.Errorf("workload: download %d: %w", i, err)
		default:
			if o.tampered {
				// A tampered object downloaded cleanly: detection miss
				// (must never happen; left uncounted so the rate shows it).
				continue
			}
			if res.IntegrityOK {
				stats.CleanDownloadsOK++
			}
			// A fraction of honest downloads turn into blackmail claims.
			if rng.Float64() < p.FalseClaimRate {
				stats.FalseClaims++
				obj, _ := d.Store.Get(o.key)
				dec := arb.Decide(&arbitrator.Case{
					TxnID:        o.txn,
					ObjectKey:    o.key,
					ClaimantID:   deploy.ClientName,
					RespondentID: deploy.ProviderName,
					ClaimantNRO:  o.up.NRO,
					ClaimantNRR:  o.up.NRR,
					ProducedData: obj.Data,
				})
				stats.Verdicts[dec.Verdict.String()]++
				if dec.Verdict == arbitrator.VerdictClaimFalse {
					stats.FalseClaimsExposed++
				}
			}
		}
	}

	stats.ClientMsgs = d.ClientCounters.Get(metrics.MsgsSent) + d.ClientCounters.Get(metrics.MsgsRecv)
	stats.TTPMsgs = d.TTPCounters.Get(metrics.MsgsRecv) + d.TTPCounters.Get(metrics.MsgsSent)
	return stats, nil
}
