// Platformaudit demonstrates the paper's §2 analysis live: the same
// insider tampering is run against simulators of all three commercial
// platforms (Azure blob storage, AWS S3/Import-Export, Google SDC),
// showing that each platform's own integrity machinery passes the
// tampered download — the Fig. 5 gap.
//
//	go run ./examples/platformaudit
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/cloudsim/awssim"
	"repro/internal/cloudsim/azuresim"
	"repro/internal/cloudsim/gaesim"
	"repro/internal/cryptoutil"
	"repro/internal/storage"
)

var original = []byte("patient record: dosage = 10mg")

func tamper(b []byte) []byte {
	return bytes.Replace(b, []byte("10mg"), []byte("99mg"), 1)
}

func main() {
	fmt.Println("insider attack: rewrite stored data, fix platform metadata")
	fmt.Println()
	azure()
	aws()
	gae()
	fmt.Println()
	fmt.Println("all three platforms served tampered data through their own checks.")
	fmt.Println("run examples/financialaudit to see TPNR close this gap.")
}

func azure() {
	svc := azuresim.New(storage.NewMem(nil), time.Now)
	key, err := svc.CreateAccount("clinic")
	if err != nil {
		log.Fatal(err)
	}
	client := azuresim.NewClient(svc, "clinic", key)
	client.PutBlock("/records/patient-7", original)
	if err := svc.Store().(storage.Tamperer).Tamper("clinic/records/patient-7", true, tamper); err != nil {
		log.Fatal(err)
	}
	_, resp := client.GetBlock("/records/patient-7")
	fmt.Printf("Azure : GET status %d, Content-MD5 check passed=%v, data=%q\n",
		resp.Status, azuresim.VerifyMD5(resp), resp.Body)
}

func aws() {
	svc := awssim.New(storage.NewMem(nil), awssim.DefaultParams())
	secret, err := svc.CreateAccount("AKIACLINIC")
	if err != nil {
		log.Fatal(err)
	}
	put := awssim.RequestMAC(secret, "PUT", "records/patient-7")
	if _, err := svc.S3Put("AKIACLINIC", put, "records/patient-7", original); err != nil {
		log.Fatal(err)
	}
	if err := svc.Store().(storage.Tamperer).Tamper("records/patient-7", true, tamper); err != nil {
		log.Fatal(err)
	}
	get := awssim.RequestMAC(secret, "GET", "records/patient-7")
	data, md5d, err := svc.S3Get("AKIACLINIC", get, "records/patient-7")
	if err != nil {
		log.Fatal(err)
	}
	ok := cryptoutil.Sum(cryptoutil.MD5, data).Equal(md5d)
	fmt.Printf("AWS   : GET ok, recomputed-MD5 check passed=%v, data=%q\n", ok, data)
}

func gae() {
	src := storage.NewMem(nil)
	src.Put("records/patient-7", original, cryptoutil.Digest{})
	tunnel := gaesim.NewTunnelServer()
	key, err := cryptoutil.GenerateKeyBits(1024)
	if err != nil {
		log.Fatal(err)
	}
	der, err := cryptoutil.MarshalPublicKey(key.Public())
	if err != nil {
		log.Fatal(err)
	}
	tunnel.RegisterConsumer("clinic-apps", der)
	token, err := tunnel.IssueToken()
	if err != nil {
		log.Fatal(err)
	}
	dep := &gaesim.Deployment{
		Tunnel: tunnel,
		Agent:  gaesim.NewAgent(src, []gaesim.Rule{{ViewerID: "*", ResourcePrefix: "records/"}}),
	}
	if err := src.Tamper("records/patient-7", true, tamper); err != nil {
		log.Fatal(err)
	}
	req, err := gaesim.BuildSignedRequest(key, "clinic", "dr-x", "i1", "app", "clinic-apps", token, "records/patient-7")
	if err != nil {
		log.Fatal(err)
	}
	data, _, err := dep.Request(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GAE   : signed request validated, no digest returned,  data=%q\n", data)
}
