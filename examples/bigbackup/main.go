// Bigbackup demonstrates the chunked-object extension for the paper's
// target workload ("Cloud storage is only attractive to large volume
// (TB) data backup", §6): a backup is split into chunks under a Merkle
// manifest whose root is covered by TPNR evidence, and tampering is
// LOCALIZED to the exact chunks instead of "somewhere in the
// terabyte".
//
//	go run ./examples/bigbackup
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/internal/bigobject"
	"repro/internal/deploy"
	"repro/internal/storage"
)

func main() {
	d, err := deploy.New(deploy.Config{KeyBits: 1024})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	conn, err := d.DialProvider()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	// A "large" backup (scaled down for the example) in 4 KiB chunks.
	backup := make([]byte, 64<<10)
	for i := range backup {
		backup[i] = byte(i * 13)
	}
	up, err := bigobject.Upload(context.Background(), d.Client, conn, "bk-2010", "backups/full", backup, 4<<10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %d bytes as %d chunks; manifest root %s…\n",
		len(backup), len(up.ChunkTxns), up.Manifest.Root.Hex()[:16])

	// The insider corrupts chunks 3 and 11, fixing platform metadata.
	tam := d.Store.(storage.Tamperer)
	for _, i := range []int{3, 11} {
		if err := tam.Tamper(bigobject.ChunkKey("backups/full", i), true, func(b []byte) []byte {
			b[len(b)/2] ^= 0xFF
			return b
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("insider corrupted chunks 3 and 11 (metadata fixed)")

	down, err := bigobject.Download(context.Background(), d.Client, conn, "bk-2010-restore", "backups/full", up.ManifestTxn)
	if !errors.Is(err, bigobject.ErrTampered) {
		log.Fatalf("expected tamper detection, got %v", err)
	}
	fmt.Printf("restore detected and LOCALIZED tampering to chunks %v\n", down.BadChunks)
	fmt.Printf("(%d of %d chunks are intact and were recovered)\n",
		len(down.Manifest.Leaves)-len(down.BadChunks), len(down.Manifest.Leaves))
}
