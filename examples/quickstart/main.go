// Quickstart: a complete TPNR upload + download in one process.
//
// It wires a full deployment (CA, client Alice, provider Bob, TTP) on
// an in-memory network, uploads an object with non-repudiation
// evidence, downloads it back, and verifies the upload-to-download
// integrity link.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/deploy"
)

func main() {
	// One call builds and starts everything: CA, identities, provider
	// with an in-memory blob store, TTP, listeners.
	d, err := deploy.New(deploy.Config{KeyBits: 1024})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	conn, err := d.DialProvider()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	// Upload: 2 protocol messages, no TTP. Alice gets Bob's signed
	// receipt (NRR); Bob gets Alice's signed origin evidence (NRO).
	data := []byte("hello, non-repudiated cloud storage")
	up, err := d.Client.Upload(context.Background(), conn, "txn-quickstart", "hello.txt", data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %d bytes\n", len(data))
	fmt.Printf("  NRO signed by %s over md5:%s\n", up.NRO.Header.SenderID, up.NRO.Header.DataMD5.Hex()[:16]+"…")
	fmt.Printf("  NRR signed by %s over the same digest\n", up.NRR.Header.SenderID)

	// Download: the client automatically checks the served bytes
	// against the digest BOTH parties signed at upload time.
	down, err := d.Client.Download(context.Background(), conn, "txn-quickstart-dl", "hello.txt", "txn-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("downloaded %q\n", down.Data)
	fmt.Printf("upload-to-download integrity verified: %v\n", down.IntegrityOK)
}
