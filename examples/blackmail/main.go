// Blackmail replays the paper's §2.4 blackmail scenario:
//
//	Alice stores some data in the cloud, downloads it intact, and then
//	reports that her data were broken, claiming compensation. How can
//	the service provider demonstrate her innocence?
//
// With TPNR the provider holds Alice's signed NRO and can produce data
// matching the agreed digest — the arbitrator exposes the false claim.
//
//	go run ./examples/blackmail
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/arbitrator"
	"repro/internal/deploy"
)

func main() {
	d, err := deploy.New(deploy.Config{KeyBits: 1024})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	conn, err := d.DialProvider()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	// 1. Alice uploads and later downloads her data — everything is
	// intact.
	data := []byte("backup archive, perfectly intact")
	up, err := d.Client.Upload(context.Background(), conn, "txn-bk", "backups/archive", data)
	if err != nil {
		log.Fatal(err)
	}
	down, err := d.Client.Download(context.Background(), conn, "txn-bk-dl", "backups/archive", "txn-bk")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. Alice uploaded and downloaded %d bytes, integrity OK=%v\n", len(down.Data), down.IntegrityOK)

	// 2. Alice nevertheless claims her data were corrupted and demands
	// compensation. The provider produces the stored data plus the
	// evidence both sides signed.
	fmt.Println("2. Alice files a false tampering claim")
	obj, _ := d.Store.Get("backups/archive")
	arb := arbitrator.NewWithKey(d.CA.Key(), d.CA.Lookup, nil)
	dec := arb.Decide(&arbitrator.Case{
		TxnID:        "txn-bk",
		ObjectKey:    "backups/archive",
		ClaimantID:   deploy.ClientName,
		RespondentID: deploy.ProviderName,
		ClaimantNRO:  up.NRO,
		ClaimantNRR:  up.NRR,
		ProducedData: obj.Data,
	})

	// 3. The arbitrator: the produced data matches the digest Alice
	// HERSELF signed in the NRO — the claim is false.
	fmt.Println("3. arbitration findings:")
	for _, f := range dec.Findings {
		fmt.Println("   -", f)
	}
	fmt.Printf("   VERDICT: %s — the provider has demonstrated its innocence\n", dec.Verdict)
	if dec.Verdict != arbitrator.VerdictClaimFalse {
		log.Fatalf("unexpected verdict %v", dec.Verdict)
	}
}
