// Attackgauntlet runs the paper's §5 adversaries live: each classic
// attack (man-in-the-middle, reflection, interleaving, replay,
// timeliness) is executed against a real TPNR deployment and against a
// naive MD5-only baseline, printing what each attacker achieved.
//
//	go run ./examples/attackgauntlet
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
)

func main() {
	fmt.Println("running the §5 attack gauntlet (10 live attack executions)…")
	outcomes, err := attack.Gauntlet()
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range outcomes {
		status := "PREVENTED"
		if o.Succeeded {
			status = "succeeded"
		}
		fmt.Printf("\n%-18s vs %-5s → %s\n    %s\n", o.Attack, o.Target, status, o.Detail)
	}
	fmt.Println("\nexpected shape: every attack prevented by TPNR, every attack")
	fmt.Println("successful against the naive baseline.")
}
