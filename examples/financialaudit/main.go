// Financialaudit replays the paper's §2.4 motivating scenario:
//
//	Alice, a company CFO, stores the company financial data at a cloud
//	storage service provided by Eve. Bob, the administration chairman,
//	downloads the data. Eve — the storage provider, with full access —
//	tampers with the records and covers her tracks in the platform
//	metadata.
//
// With TPNR, the tampering is detected at download AND attributed to
// the provider by the arbitrator, answering the paper's three
// concerns: integrity, repudiation, and (here, honestly raised)
// blame.
//
//	go run ./examples/financialaudit
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"

	"repro/internal/arbitrator"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/storage"
)

func main() {
	d, err := deploy.New(deploy.Config{KeyBits: 1024})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	conn, err := d.DialProvider()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	// 1. The CFO uploads the books. (deploy names the client "alice"
	// and the provider "bob"; read them as the paper's Alice and Eve.)
	books := []byte("FY2010 ledger: revenue=1,000,000 expenses=900,000 profit=100,000")
	up, err := d.Client.Upload(context.Background(), conn, "txn-books", "finance/fy2010", books)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. CFO uploaded the FY2010 ledger; both parties hold signed evidence")

	// 2. The provider (Eve) doctors the stored books AND fixes the
	// platform's MD5 metadata — the move that defeats every §2
	// platform check.
	err = d.Store.(storage.Tamperer).Tamper("finance/fy2010", true, func(b []byte) []byte {
		return bytes.Replace(b, []byte("profit=100,000"), []byte("profit=900,000"), 1)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2. provider tampered in storage and recomputed the platform MD5")

	// 3. The chairman downloads. The platform-style check (data vs
	// provider-reported digest) would pass — but the TPNR client
	// compares against the digest signed by BOTH parties at upload.
	res, err := d.Client.Download(context.Background(), conn, "txn-audit", "finance/fy2010", "txn-books")
	if !errors.Is(err, core.ErrIntegrity) {
		log.Fatalf("expected integrity failure, got %v", err)
	}
	fmt.Println("3. download FAILED the agreed-digest check — tampering detected")

	// 4. Dispute: the arbitrator examines the evidence.
	arb := arbitrator.NewWithKey(d.CA.Key(), d.CA.Lookup, nil)
	obj, _ := d.Store.Get("finance/fy2010")
	dec := arb.Decide(&arbitrator.Case{
		TxnID:        "txn-books",
		ObjectKey:    "finance/fy2010",
		ClaimantID:   deploy.ClientName,
		RespondentID: deploy.ProviderName,
		ClaimantNRO:  up.NRO,
		ClaimantNRR:  up.NRR,
		ProducedData: obj.Data,
	})
	fmt.Println("4. arbitration findings:")
	for _, f := range dec.Findings {
		fmt.Println("   -", f)
	}
	fmt.Printf("   VERDICT: %s\n", dec.Verdict)
	_ = res
}
