// Command workload runs population-level TPNR studies: N objects,
// configurable insider-tamper and false-claim rates, full dispute
// resolution, and a rate report (the X1 experiment, parameterized).
//
//	workload -objects 100 -tamper 0.2 -claims 0.1 -seed 7
//
// -shards runs the provider as a sharded engine; -arrival-rate
// switches the upload phase to an open-loop Poisson arrival process
// (uploads/second) instead of the default closed loop:
//
//	workload -objects 200 -shards 4 -arrival-rate 50
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	objects := flag.Int("objects", 50, "number of objects to upload")
	minSize := flag.Int("min-size", 64, "minimum object size in bytes")
	maxSize := flag.Int("max-size", 4096, "maximum object size in bytes")
	tamper := flag.Float64("tamper", 0.2, "insider tamper rate [0,1]")
	claims := flag.Float64("claims", 0.1, "false-claim rate on clean objects [0,1]")
	seed := flag.Int64("seed", 1, "RNG seed (deterministic runs)")
	shards := flag.Int("shards", 1, "provider shard count (>1 runs a sharded engine with consistent-hash routing)")
	arrival := flag.Float64("arrival-rate", 0, "open-loop Poisson upload arrivals per second (0 = closed loop)")
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "workload: -shards must be >= 1")
		os.Exit(2)
	}
	if *arrival < 0 {
		fmt.Fprintln(os.Stderr, "workload: -arrival-rate must be >= 0")
		os.Exit(2)
	}

	s, err := workload.Run(workload.Params{
		Objects:        *objects,
		MinSize:        *minSize,
		MaxSize:        *maxSize,
		TamperRate:     *tamper,
		FalseClaimRate: *claims,
		Seed:           *seed,
		Shards:         *shards,
		ArrivalRate:    *arrival,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "workload:", err)
		os.Exit(1)
	}

	tb := metrics.NewTable(
		fmt.Sprintf("workload: %d objects, tamper %.0f%%, false claims %.0f%%, seed %d, %d shard(s)",
			*objects, *tamper*100, *claims*100, *seed, *shards),
		"measure", "value")
	tb.AddRow("uploads / downloads", fmt.Sprintf("%d / %d", s.Uploads, s.Downloads))
	tb.AddRow("clean downloads verified", s.CleanDownloadsOK)
	tb.AddRow("tampers injected", s.TampersInjected)
	tb.AddRow("tampers detected", fmt.Sprintf("%d (%.0f%%)", s.TampersDetected, rate(s.TampersDetected, s.TampersInjected)))
	tb.AddRow("tampers attributed", fmt.Sprintf("%d (%.0f%%)", s.TampersAttributed, rate(s.TampersAttributed, s.TampersInjected)))
	tb.AddRow("false claims filed", s.FalseClaims)
	tb.AddRow("false claims exposed", fmt.Sprintf("%d (%.0f%%)", s.FalseClaimsExposed, rate(s.FalseClaimsExposed, s.FalseClaims)))
	tb.AddRow("client protocol messages", s.ClientMsgs)
	tb.AddRow("TTP messages", s.TTPMsgs)
	if *arrival > 0 && s.UploadElapsed > 0 {
		achieved := float64(s.Uploads) / s.UploadElapsed.Seconds()
		tb.AddRow("upload throughput", fmt.Sprintf("%.1f/s achieved vs %.1f/s offered (open loop)", achieved, *arrival))
	}
	fmt.Println(tb.String())

	if len(s.Verdicts) > 0 {
		vt := metrics.NewTable("arbitrator verdicts", "verdict", "count")
		names := make([]string, 0, len(s.Verdicts))
		for v := range s.Verdicts {
			names = append(names, v)
		}
		sort.Strings(names)
		for _, v := range names {
			vt.AddRow(v, s.Verdicts[v])
		}
		fmt.Println(vt.String())
	}

	if s.TampersDetected != s.TampersInjected || s.TampersAttributed != s.TampersInjected ||
		s.FalseClaimsExposed != s.FalseClaims {
		fmt.Fprintln(os.Stderr, "workload: GUARANTEE VIOLATION — see tables above")
		os.Exit(1)
	}
	fmt.Println("all guarantees held: 100% detection, attribution and exposure")
}

func rate(num, den int) float64 {
	if den == 0 {
		return 100
	}
	return float64(num) / float64(den) * 100
}
