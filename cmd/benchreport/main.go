// Command benchreport runs the repository's hot-path benchmark
// families (E11 plus the pooled transport pipe, the E12 crypto API,
// E13 recovery, E14 sharding, E15 storage-dwell audit) and writes a
// machine-readable report, by default BENCH_PR8.json at the
// repository root.
//
// The report records the environment honestly — GOMAXPROCS in
// particular, because the parallel hash and Merkle paths deliberately
// fall back to serial on a single-CPU box — and computes the
// acceptance ratios the issue asks for:
//
//   - wal_group_vs_always_16appenders: append throughput of the
//     group-commit policy relative to fsync-per-append at 16
//     concurrent appenders (target ≥ 2×).
//   - parallel_hash_speedup: MD5+SHA256 digest pair computed via
//     SumParallel relative to sequential (target ≥ 1.5× on ≥ 4 cores;
//     ~1.0 at GOMAXPROCS=1 by design).
//   - verify_cache_speedup: repeat evidence verification through the
//     VerifyCache relative to cold RSA verification (target ≥ 5×).
//
// The E12 crypto-API families ride along with their own ratios:
// ed25519_cold_open_speedup (Ed25519 vs RSA evidence open, target ≥5×),
// batch_verify_speedup_n8/n64 (one VerifyBatch round vs n singles), and
// aggregate_receipt_speedup_k64 (one aggregate session receipt vs 64
// individual receipt signatures).
//
// The E13 recovery family (internal/core) compares full journal replay
// against checkpoint-snapshot-plus-tail recovery of the same history:
// recovery_snapshot_speedup_1k/_10k (target ≥5× at 10k sessions).
//
// The E14 sharding family (internal/core) measures the ShardedEngine
// at 1→2→4→8 shards: sharded_upload_speedup_4x/_8x compare journaled
// upload throughput under 16 concurrent workers (one fsync stream per
// shard), and sharded_recovery_speedup_4x/_8x compare parallel
// fan-out recovery of the same 3000-session history. The ≥3×-at-8-
// shards and ≥2×-recovery-at-4-shards criteria apply at GOMAXPROCS≥8
// on storage with independent fsync streams; a single-core VM whose
// disk serializes flushes reports its own (honest) ceiling.
//
// Usage:
//
//	go run ./cmd/benchreport [-o BENCH_PR8.json] [-benchtime 1s]
//	go run ./cmd/benchreport -baseline BENCH_PR8.json -max-regress 0.05
//
// With -baseline, the freshly measured ns/op of every family shared
// with the baseline report is compared against it; -regress-skip marks
// families (by regexp) whose comparison is advisory only — the E14
// sharded and E11 WAL-append families are gated this way in
// `make bench-check` because they measure the host's fsync and
// scheduling behaviour, which drifts far past any code-regression
// budget on shared virtualized hardware. Any other benchmark slower
// by more than -max-regress (a fraction; 0.05 = 5%) fails the run.
//
// Cross-run ns/op comparison is only as stable as the host, so the
// gate's real teeth are within-run: -ratio-min and -ratio-max take
// comma-separated name=value bounds on the acceptance ratios above.
// Both sides of a ratio are measured in the same run on the same host,
// so CPU steal and disk drift cancel out — a broken group-commit path,
// a disabled verify cache, or reintroduced transport allocations fail
// the gate no matter how fast or slow the box happens to be today.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// benchPattern selects the families the report covers.
const benchPattern = `^(BenchmarkE11WALAppend|BenchmarkE11ParallelHash|BenchmarkE11MerkleBuild|BenchmarkE11VerifyCache|BenchmarkE10TransportPipe|BenchmarkE12EvidenceColdOpen|BenchmarkE12BatchVerify|BenchmarkE12AggregateReceipt|BenchmarkE13Recovery|BenchmarkE14ShardedUpload|BenchmarkE14ShardedRecovery|BenchmarkE15Audit|BenchmarkE15AuditArbitrate|BenchmarkE16Replication)$`

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerSec    float64            `json:"mb_per_s,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the committed bench report (BENCH_PR8.json) schema.
type Report struct {
	GeneratedAt string             `json:"generated_at"`
	GoVersion   string             `json:"go_version"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	CPU         string             `json:"cpu,omitempty"`
	BenchTime   string             `json:"benchtime"`
	Results     []Result           `json:"results"`
	Ratios      map[string]float64 `json:"ratios"`
	Notes       []string           `json:"notes"`
	// VsBaseline maps benchmark name to new_ns_per_op / baseline_ns_per_op
	// when -baseline is given (1.03 = 3% slower than the baseline).
	VsBaseline map[string]float64 `json:"vs_baseline,omitempty"`
}

// benchLine matches "BenchmarkName[-P]  <iters>  <value unit>...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func parseLine(line string, r *Result) bool {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return false
	}
	r.Name = m[1]
	r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
	r.Extra = map[string]float64{}
	fields := strings.Fields(m[3])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerSec = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			r.Extra[unit] = v
		}
	}
	if len(r.Extra) == 0 {
		r.Extra = nil
	}
	return r.NsPerOp > 0
}

func main() {
	out := flag.String("o", "BENCH_PR8.json", "output path for the JSON report")
	benchtime := flag.String("benchtime", "1s", "value passed to -benchtime")
	baseline := flag.String("baseline", "", "prior report to compare ns/op against (empty = no comparison)")
	maxRegress := flag.Float64("max-regress", 0.05, "fail when any shared benchmark is slower than the baseline by more than this fraction")
	regressSkip := flag.String("regress-skip", "", "regexp of benchmark names whose baseline comparison is advisory only (still measured and recorded, never fails the gate); for families bound to shared-disk fsync behaviour rather than code")
	ratioMin := flag.String("ratio-min", "", "comma-separated name=value floors on the computed acceptance ratios (fail when a named ratio measures below its floor); within-run, so host speed drift cancels out")
	ratioMax := flag.String("ratio-max", "", "comma-separated name=value ceilings on the computed acceptance ratios (e.g. transport_pipe_allocs_per_op=0)")
	flag.Parse()

	minBounds, err := parseBounds(*ratioMin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: -ratio-min: %v\n", err)
		os.Exit(1)
	}
	maxBounds, err := parseBounds(*ratioMax)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: -ratio-max: %v\n", err)
		os.Exit(1)
	}

	// The E13 recovery family lives inside internal/core (it fabricates
	// journal history through unexported helpers); everything else is in
	// the root harness package.
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", benchPattern, "-benchmem", "-benchtime", *benchtime, ".", "./internal/core")
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: go test: %v\n%s", err, raw)
		os.Exit(1)
	}

	rep := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		BenchTime:   *benchtime,
		Ratios:      map[string]float64{},
	}
	byName := map[string]Result{}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPU = cpu
			continue
		}
		var r Result
		if parseLine(line, &r) {
			rep.Results = append(rep.Results, r)
			byName[r.Name] = r
		}
	}
	if len(rep.Results) == 0 {
		fmt.Fprintf(os.Stderr, "benchreport: no benchmark lines parsed from go test output:\n%s", raw)
		os.Exit(1)
	}

	// Acceptance ratios. Each is "time of the slow variant / time of
	// the fast variant", i.e. a throughput speedup; missing benchmarks
	// simply leave the ratio out rather than inventing a number.
	ratio := func(key, slow, fast string) {
		a, okA := byName[slow]
		b, okB := byName[fast]
		if okA && okB && b.NsPerOp > 0 {
			rep.Ratios[key] = a.NsPerOp / b.NsPerOp
		}
	}
	ratio("wal_group_vs_always_16appenders",
		"BenchmarkE11WALAppend/policy=always/appenders=16",
		"BenchmarkE11WALAppend/policy=group/appenders=16")
	ratio("wal_group_vs_always_1appender",
		"BenchmarkE11WALAppend/policy=always/appenders=1",
		"BenchmarkE11WALAppend/policy=group/appenders=1")
	ratio("parallel_hash_speedup",
		"BenchmarkE11ParallelHash/serial",
		"BenchmarkE11ParallelHash/parallel")
	ratio("verify_cache_speedup",
		"BenchmarkE11VerifyCache/cold",
		"BenchmarkE11VerifyCache/warm")
	if r, ok := byName["BenchmarkE10TransportPipe"]; ok {
		rep.Ratios["transport_pipe_allocs_per_op"] = r.AllocsPerOp
	}
	ratio("ed25519_cold_open_speedup",
		"BenchmarkE12EvidenceColdOpen/scheme=rsa",
		"BenchmarkE12EvidenceColdOpen/scheme=ed25519")
	ratio("batch_verify_speedup_n8",
		"BenchmarkE12BatchVerify/mode=singles/n=8",
		"BenchmarkE12BatchVerify/mode=batch/n=8")
	ratio("batch_verify_speedup_n64",
		"BenchmarkE12BatchVerify/mode=singles/n=64",
		"BenchmarkE12BatchVerify/mode=batch/n=64")
	ratio("aggregate_receipt_speedup_k64",
		"BenchmarkE12AggregateReceipt/mode=singles/k=64",
		"BenchmarkE12AggregateReceipt/mode=aggregate/k=64")
	ratio("recovery_snapshot_speedup_1k",
		"BenchmarkE13Recovery/mode=replay/sessions=1000",
		"BenchmarkE13Recovery/mode=snapshot/sessions=1000")
	ratio("recovery_snapshot_speedup_10k",
		"BenchmarkE13Recovery/mode=replay/sessions=10000",
		"BenchmarkE13Recovery/mode=snapshot/sessions=10000")
	ratio("sharded_upload_speedup_4x",
		"BenchmarkE14ShardedUpload/shards=1",
		"BenchmarkE14ShardedUpload/shards=4")
	ratio("sharded_upload_speedup_8x",
		"BenchmarkE14ShardedUpload/shards=1",
		"BenchmarkE14ShardedUpload/shards=8")
	ratio("sharded_recovery_speedup_4x",
		"BenchmarkE14ShardedRecovery/shards=1",
		"BenchmarkE14ShardedRecovery/shards=4")
	ratio("sharded_recovery_speedup_8x",
		"BenchmarkE14ShardedRecovery/shards=1",
		"BenchmarkE14ShardedRecovery/shards=8")
	ratio("audit_vs_download_speedup_n4",
		"BenchmarkE15Audit/mode=download",
		"BenchmarkE15Audit/mode=challenge/n=4")
	ratio("audit_vs_download_speedup_n16",
		"BenchmarkE15Audit/mode=download",
		"BenchmarkE15Audit/mode=challenge/n=16")
	ratio("replication_quorum_overhead_r3",
		"BenchmarkE16Replication/mode=quorum/r=3",
		"BenchmarkE16Replication/mode=local")

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("GOMAXPROCS=%d; at 1 the SumParallel and Merkle level-parallel paths fall back to serial by design, so parallel_hash_speedup ~1.0 is expected there (the >=1.5x criterion applies on >=4 cores)", rep.GOMAXPROCS),
		"wal ratios compare wall time per acked-durable append; fsyncs/op in the WAL results shows the group-commit coalescing directly",
		"verify_cache_speedup compares two RSA verifies (cold) against two memo lookups (warm) for the same evidence item",
		"ed25519_cold_open_speedup compares a full evidence open (unseal + two signature checks) across schemes; RSA pays a private-key decrypt per message (target >=5x)",
		"batch_verify_speedup_* compares n single verifications against one VerifyBatch round; the worker fan-out falls back to serial at GOMAXPROCS=1, so the >=1x-at-n=8 criterion applies on multi-core boxes",
		"aggregate_receipt_speedup_k64 compares 64 individual receipt sign+verify pairs against ONE aggregate signature over a Merkle root of the 64 evidence digests plus one verification",
		"recovery_snapshot_speedup_* compares full journal replay against snapshot-plus-tail recovery of the SAME history (n terminal sessions + a 16-session tail); the >=5x criterion applies at 10k sessions",
		"sharded_upload_speedup_* compares journaled upload throughput (SyncAlways, 16 workers) at 1 vs N shards: N independent fsync streams vs one; the >=3x-at-8-shards criterion applies at GOMAXPROCS>=8 on storage with parallel flush queues — a 1-core VM whose virtual disk serializes flushes tops out around the disk's own concurrent-fsync ceiling",
		"sharded_recovery_speedup_* compares crash recovery of the same 3000-session history replayed by one shard vs N shards in parallel (one goroutine each); replay is decode-bound CPU, so the >=2x-at-4-shards criterion applies at GOMAXPROCS>=4 and ~1.0x is expected at GOMAXPROCS=1",
		"audit_vs_download_speedup_* (E15) compares a full download session of a 1 MiB object against an n-leaf storage-dwell challenge-response round over the same object: the audit verifies possession by moving n challenged chunks plus O(n log m) hashes instead of the whole object (the chunk bytes are what make it a possession proof — hashes alone are precomputable from a stored tree), so it must stay faster than the download (floor 1.5x at n=4) and the margin grows with object size",
		"replication_quorum_overhead_r3 (E16) compares a journaled 64 KiB upload at R=3/quorum=2 (every ack waits for one of two follower journals to fsync the record) against the same upload acked on leader-local durability alone; the two follower fsyncs run in parallel, so the overhead is a ceiling (<=5x), not a floor — that ceiling is the whole price of surviving the loss of any single node with every acked receipt intact")

	var skipRE *regexp.Regexp
	if *regressSkip != "" {
		skipRE, err = regexp.Compile(*regressSkip)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: -regress-skip: %v\n", err)
			os.Exit(1)
		}
	}
	failed := checkRatios(rep.Ratios, minBounds, maxBounds)
	if *baseline != "" {
		failed = checkBaseline(rep, byName, *baseline, *maxRegress, skipRE) || failed
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("wrote %s (%d results)\n", *out, len(rep.Results))
	for k, v := range rep.Ratios {
		fmt.Printf("  %-34s %.2f\n", k, v)
	}
	if failed {
		os.Exit(1)
	}
}

// parseBounds parses a comma-separated "name=value,name=value" bound
// list. An empty spec yields no bounds.
func parseBounds(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	bounds := map[string]float64{}
	for _, pair := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad bound %q (want name=value)", pair)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad bound %q: %v", pair, err)
		}
		bounds[name] = f
	}
	return bounds, nil
}

// checkRatios enforces within-run floors and ceilings on the computed
// acceptance ratios. A bound naming a ratio that was not computed
// fails too — a renamed or vanished benchmark must not silently pass
// the gate.
func checkRatios(ratios, min, max map[string]float64) bool {
	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchreport: "+format+"\n", args...)
		failed = true
	}
	for name, floor := range min {
		v, ok := ratios[name]
		switch {
		case !ok:
			fail("ratio floor %s=%.2f: ratio not computed this run", name, floor)
		case v < floor:
			fail("ratio %s measured %.2f, below floor %.2f", name, v, floor)
		}
	}
	for name, ceil := range max {
		v, ok := ratios[name]
		switch {
		case !ok:
			fail("ratio ceiling %s=%.2f: ratio not computed this run", name, ceil)
		case v > ceil:
			fail("ratio %s measured %.2f, above ceiling %.2f", name, v, ceil)
		}
	}
	return failed
}

// checkBaseline compares the fresh results against a prior report and
// records the per-benchmark slowdown factors. It returns true when any
// shared family regressed past the budget. Families matching skip are
// compared and recorded but advisory: they never fail the gate — the
// escape hatch for benchmarks that measure shared-hardware behaviour
// (concurrent fsync streams on a virtual disk) rather than code.
func checkBaseline(rep *Report, byName map[string]Result, path string, maxRegress float64, skip *regexp.Regexp) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: reading baseline: %v\n", err)
		os.Exit(1)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: parsing baseline %s: %v\n", path, err)
		os.Exit(1)
	}
	rep.VsBaseline = map[string]float64{}
	failed := false
	for _, old := range base.Results {
		cur, ok := byName[old.Name]
		if !ok || old.NsPerOp <= 0 {
			continue
		}
		f := cur.NsPerOp / old.NsPerOp
		rep.VsBaseline[old.Name] = f
		status := "ok"
		if f > 1+maxRegress {
			if skip != nil && skip.MatchString(old.Name) {
				status = "slower (advisory, -regress-skip)"
			} else {
				status = "REGRESSION"
				failed = true
			}
		}
		fmt.Printf("  vs baseline %-55s %.3fx  %s\n", old.Name, f, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchreport: regression beyond %.0f%% against %s\n", maxRegress*100, path)
	}
	return failed
}
