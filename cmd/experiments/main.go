// Command experiments regenerates every table and figure of the paper
// (the E1–E10 index in DESIGN.md) and prints the rendered artifacts.
//
//	experiments            # run all
//	experiments E5 E9      # run selected experiments
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	ids := os.Args[1:]
	var results []experiments.Result
	if len(ids) == 0 {
		all, err := experiments.All()
		if err != nil {
			fail(err)
		}
		results = all
	} else {
		for _, id := range ids {
			runner := experiments.ByID(id)
			if runner == nil {
				fail(fmt.Errorf("unknown experiment %q (want E1..E10)", id))
			}
			res, err := runner()
			if err != nil {
				fail(err)
			}
			results = append(results, res)
		}
	}
	for _, r := range results {
		fmt.Printf("==================================================================\n")
		fmt.Printf("%s — %s\n", r.ID, r.Title)
		fmt.Printf("==================================================================\n\n")
		fmt.Println(r.Text)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
