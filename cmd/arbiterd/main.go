// Command arbiterd is the off-line TPNR arbitrator (Fig. 6d): given a
// transaction's archived evidence and the data the provider currently
// produces, it rules on the dispute and prints the findings.
//
//	arbiterd -state ./state -txn t1 -claimant alice -respondent bob -produced ./blobs/<file>
//
// Pass -produced "" (or omit the flag) when the provider cannot
// produce any data; pass -audit-only when the dispute contests only
// dwell integrity and no production was demanded (otherwise a missing
// -produced counts against the respondent).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arbitrator"
	"repro/internal/evidence"
	"repro/internal/keystore"
)

func main() {
	state := flag.String("state", "./state", "PKI state directory")
	txn := flag.String("txn", "", "disputed transaction ID")
	objectKey := flag.String("key", "", "disputed object key")
	claimant := flag.String("claimant", "alice", "claimant identity")
	respondent := flag.String("respondent", "bob", "respondent identity")
	produced := flag.String("produced", "", "file containing the data the respondent produces")
	auditOnly := flag.Bool("audit-only", false, "the dispute contests only dwell integrity: no production was demanded, so a verified audit response alone can defeat the claim")
	flag.Parse()

	if *txn == "" {
		fmt.Fprintln(os.Stderr, "arbiterd: -txn is required")
		os.Exit(2)
	}
	world, err := keystore.LoadWorld(*state)
	if err != nil {
		fail(err)
	}

	c := &arbitrator.Case{
		TxnID:        *txn,
		ObjectKey:    *objectKey,
		ClaimantID:   *claimant,
		RespondentID: *respondent,
		AuditOnly:    *auditOnly,
	}
	// Gather whatever evidence the archive holds; missing items are
	// part of the case, not an error.
	if ev, err := keystore.LoadEvidence(*state, *txn, evidence.RoleOwn, evidence.KindNRO); err == nil {
		c.ClaimantNRO = ev
	}
	if ev, err := keystore.LoadEvidence(*state, *txn, evidence.RolePeer, evidence.KindNRR); err == nil {
		c.ClaimantNRR = ev
	}
	if ev, err := keystore.LoadEvidence(*state, *txn, evidence.RolePeer, evidence.KindAbortAccept); err == nil {
		c.AbortReceipt = ev
	}
	if ev, err := keystore.LoadEvidence(*state, *txn, evidence.RolePeer, evidence.KindResolveResponse); err == nil {
		c.TTPStatement = ev
	}
	// Storage-dwell audit artifacts (DESIGN.md §14): nrclient audit
	// persists its latest challenge whatever the outcome, and the
	// provider's verified answer only when one arrived. An unanswered
	// (or unanswerable) challenge is what convicts — a stale response
	// that does not open the committed root for THIS challenge's nonce
	// fails verification just like no response at all.
	if ev, err := keystore.LoadEvidence(*state, *txn, evidence.RoleOwn, evidence.KindAuditChallenge); err == nil {
		c.AuditChallenge = ev
	}
	if ev, err := keystore.LoadEvidence(*state, *txn, evidence.RolePeer, evidence.KindAuditResponse); err == nil {
		c.AuditResponse = ev
	}
	if *produced != "" {
		data, err := os.ReadFile(*produced)
		if err != nil {
			fail(err)
		}
		c.ProducedData = data
	}

	arb := arbitrator.NewWithKey(world.CAPublicKey(), world.Lookup, nil)
	dec := arb.Decide(c)
	fmt.Printf("dispute over txn %s (object %q)\n", *txn, *objectKey)
	fmt.Printf("claimant: %s   respondent: %s\n\nfindings:\n", *claimant, *respondent)
	for i, f := range dec.Findings {
		fmt.Printf("  %2d. %s\n", i+1, f)
	}
	fmt.Printf("\nVERDICT: %s\n", dec.Verdict)
	if !dec.AgreedMD5.IsZero() {
		fmt.Printf("agreed digest: %s\n", dec.AgreedMD5)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "arbiterd:", err)
	os.Exit(1)
}
