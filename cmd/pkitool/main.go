// Command pkitool provisions the shared PKI state directory used by
// the nrserver, ttpd, nrclient and arbiterd daemons: a CA, one
// certified identity per party, and an evidence archive directory.
//
// Usage:
//
//	pkitool init  -state ./state [-parties alice,bob,ttp] [-scheme rsa|ed25519] [-bits 2048] [-validity 8760h]
//	pkitool show  -state ./state
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/keystore"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "init":
		runInit(os.Args[2:])
	case "show":
		runShow(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pkitool {init|show} [flags]")
	os.Exit(2)
}

func runInit(args []string) {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	state := fs.String("state", "./state", "state directory to create")
	parties := fs.String("parties", "alice,bob,ttp", "comma-separated identities to certify")
	schemeName := fs.String("scheme", "rsa", "signature scheme: rsa or ed25519")
	bits := fs.Int("bits", 2048, "RSA key size (rsa scheme only)")
	validity := fs.Duration("validity", 365*24*time.Hour, "certificate validity")
	fs.Parse(args)

	scheme, err := cryptoutil.ParseScheme(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkitool:", err)
		os.Exit(2)
	}
	names := strings.Split(*parties, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	if err := keystore.InitScheme(*state, names, *bits, *validity, scheme); err != nil {
		fmt.Fprintln(os.Stderr, "pkitool:", err)
		os.Exit(1)
	}
	desc := scheme.String()
	if scheme == cryptoutil.SchemeRSA {
		desc = fmt.Sprintf("%d-bit %s", *bits, scheme)
	}
	fmt.Printf("initialized %s with CA and identities %v (%s)\n", *state, names, desc)
}

func runShow(args []string) {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	state := fs.String("state", "./state", "state directory")
	fs.Parse(args)

	w, err := keystore.LoadWorld(*state)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkitool:", err)
		os.Exit(1)
	}
	fmt.Printf("ca: scheme=%s fingerprint=%s\n",
		w.CAPublicKey().Scheme(), shortFP(w.CAPublicKey().Fingerprint()))
	fmt.Println("identities:")
	for _, name := range w.Names() {
		cert, err := w.Lookup(name)
		if err != nil {
			continue
		}
		line := fmt.Sprintf("  %-12s serial=%d  valid %s → %s", name, cert.Serial,
			cert.NotBefore.Format(time.RFC3339), cert.NotAfter.Format(time.RFC3339))
		if key, err := w.Key(name); err != nil {
			// A certificate whose key scheme differs from the CA's (or
			// that fails under it) is worth flagging, not hiding: the
			// typed mismatch error tells the operator which it is.
			if errors.Is(err, cryptoutil.ErrSchemeMismatch) {
				line += "  MIXED-SCHEME: " + err.Error()
			} else {
				line += "  INVALID: " + err.Error()
			}
		} else {
			fp, _ := w.Fingerprint(name)
			line += fmt.Sprintf("  scheme=%s fingerprint=%s", key.Scheme(), shortFP(fp))
		}
		fmt.Println(line)
	}
	if files, err := keystore.ListEvidence(*state); err == nil && len(files) > 0 {
		fmt.Println("archived evidence:")
		for _, f := range files {
			fmt.Println("  " + f)
		}
	}
}

// shortFP renders the first 8 bytes of a key fingerprint.
func shortFP(d cryptoutil.Digest) string {
	hex := d.Hex()
	if len(hex) > 16 {
		hex = hex[:16]
	}
	return hex
}
