// Command pkitool provisions the shared PKI state directory used by
// the nrserver, ttpd, nrclient and arbiterd daemons: a CA, one
// certified identity per party, and an evidence archive directory.
//
// Usage:
//
//	pkitool init  -state ./state [-parties alice,bob,ttp] [-bits 2048] [-validity 8760h]
//	pkitool show  -state ./state
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/keystore"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "init":
		runInit(os.Args[2:])
	case "show":
		runShow(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pkitool {init|show} [flags]")
	os.Exit(2)
}

func runInit(args []string) {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	state := fs.String("state", "./state", "state directory to create")
	parties := fs.String("parties", "alice,bob,ttp", "comma-separated identities to certify")
	bits := fs.Int("bits", 2048, "RSA key size")
	validity := fs.Duration("validity", 365*24*time.Hour, "certificate validity")
	fs.Parse(args)

	names := strings.Split(*parties, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	if err := keystore.Init(*state, names, *bits, *validity); err != nil {
		fmt.Fprintln(os.Stderr, "pkitool:", err)
		os.Exit(1)
	}
	fmt.Printf("initialized %s with CA and identities %v (%d-bit RSA)\n", *state, names, *bits)
}

func runShow(args []string) {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	state := fs.String("state", "./state", "state directory")
	fs.Parse(args)

	w, err := keystore.LoadWorld(*state)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkitool:", err)
		os.Exit(1)
	}
	fmt.Println("identities:")
	for _, name := range w.Names() {
		cert, err := w.Lookup(name)
		if err != nil {
			continue
		}
		fmt.Printf("  %-12s serial=%d  valid %s → %s\n", name, cert.Serial,
			cert.NotBefore.Format(time.RFC3339), cert.NotAfter.Format(time.RFC3339))
	}
	if files, err := keystore.ListEvidence(*state); err == nil && len(files) > 0 {
		fmt.Println("archived evidence:")
		for _, f := range files {
			fmt.Println("  " + f)
		}
	}
}
