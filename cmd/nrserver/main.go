// Command nrserver runs the TPNR cloud storage provider (Bob) over
// TCP, backed by a disk blob store.
//
//	nrserver -state ./state -name bob -listen 127.0.0.1:9000 -store ./blobs \
//	         -wal-dir ./wal -fsync always -audit ./audit.log
//
// The state directory must have been provisioned with pkitool init.
// With -wal-dir, every protocol transition is journaled before it is
// acked, and a restart replays the journal: evidence and session state
// come back, and any abort the provider acked before the crash is
// honored by re-deleting the object. With -audit, the hash-chained
// audit log is persisted (and fsynced per entry) so the trail backing
// arbitration survives a crash too.
//
// With -shards N (N > 1) the provider runs N independent session
// shards routed by a pinned consistent hash of the transaction ID:
// -wal-dir and -archive-dir become roots holding one shard-00,
// shard-01, … subdirectory each, every shard checkpoints on its own
// ticker, recovery replays all shards in parallel, and /healthz
// reports degraded the moment any single shard's journal does. Restart
// with the same -shards value: the routing is stable, so each shard
// reopens exactly the journal it wrote.
//
// With -replicas R (R > 1) each shard's evidence journal is replicated
// to R-1 follower journals and a protocol step is only acked — the NRR
// only signed — once the step's journal record is durable on -quorum
// copies (leader included; default 2). Followers default to in-process
// journals under <shard-wal-dir>/replica-0N (separate disks can be
// mounted there); with -replica-addrs they are remote follower daemons
// instead, each started as `nrserver -follower -listen <addr> -wal-dir
// <dir>`. A follower that dies and comes back is backfilled by the
// anti-entropy loop with no operator action; while the write quorum is
// unreachable /healthz answers 503 "quorum: …" and new sessions are
// refused with a retryable (never TTP-escalating) rejection.
//
// SIGINT/SIGTERM triggers a graceful shutdown: the accept loop stops,
// in-flight protocol steps drain (bounded by -drain), then connections
// close.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/archive"
	"repro/internal/auditlog"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/keystore"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/replica"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wal"
)

func main() {
	state := flag.String("state", "./state", "PKI state directory")
	name := flag.String("name", "bob", "this provider's identity name")
	listen := flag.String("listen", "127.0.0.1:9000", "TCP listen address")
	storeDir := flag.String("store", "./blobs", "blob store directory")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	walDir := flag.String("wal-dir", "", "crash journal directory (empty = no journal); with -shards > 1, the root holding one shard-NN subdirectory per shard")
	fsync := flag.String("fsync", "always", "journal fsync policy: always, none, batch[:<n>], or group[:<max-batch>]")
	archiveDir := flag.String("archive-dir", "", "cold evidence archive directory; checkpoints compact terminal sessions into it (empty = keep all evidence hot); with -shards > 1, a root with per-shard subdirectories")
	ckptEvery := flag.Duration("checkpoint-every", 0, "journal checkpoint/compaction interval; bounds crash-recovery replay to one interval of traffic (0 = never; requires -wal-dir); with -shards > 1 each shard runs its own staggered ticker")
	shards := flag.Int("shards", 1, "number of independent provider shards; transactions are routed by a pinned consistent hash, so restarts must reuse the same value")
	auditPath := flag.String("audit", "", "persist the audit log to this file (fsynced per entry)")
	obsAddr := flag.String("obs-addr", "", "observability HTTP listen address serving /metrics, /healthz and /debug/pprof (empty = disabled)")
	logLevel := flag.String("log-level", "info", "structured event log level: debug, info, warn, or error")
	stepDeadline := flag.Duration("step-deadline", 0, "per-step protocol deadline; stale sessions are auto-aborted with an expiry receipt (0 = no deadline)")
	sweepEvery := flag.Duration("sweep-interval", 0, "how often the expiry reaper scans for stale sessions (0 = step-deadline/4, min 10ms)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent protocol handlers before shedding with a retryable overload frame (0 = unlimited)")
	connPending := flag.Int("conn-pending", 1, "per-connection pipelined request cap (1 = serial)")
	batchVerify := flag.Int("batch-verify", 0, "per-connection batch-drain round cap: queued inbound messages are decrypted individually but signature-verified in one batched call (0/1 = off; overrides -conn-pending)")
	auditEvery := flag.Duration("audit-interval", 0, "storage-dwell self-audit interval: recompute every committed session's Merkle root against the blob store and log divergences (0 = never)")
	replicas := flag.Int("replicas", 1, "journal replication factor per shard: the leader plus replicas-1 follower journals under <shard-wal-dir>/replica-0N (requires -wal-dir; 1 = no replication)")
	quorum := flag.Int("quorum", 0, "durable copies (leader included) each journal append must reach before its protocol step is acked (0 = min(2, replicas))")
	replicaAddrs := flag.String("replica-addrs", "", "comma-separated TCP addresses of remote follower daemons (each run with -follower); overrides the in-process followers of -replicas and requires -shards 1")
	followerMode := flag.Bool("follower", false, "run as a journal replication follower: serve the replication stream for -wal-dir on -listen and nothing else")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nrserver:", err)
		os.Exit(1)
	}
	events := obs.NewLogger(os.Stderr, lvl)

	if *ckptEvery > 0 && *walDir == "" {
		fmt.Fprintln(os.Stderr, "nrserver: -checkpoint-every requires -wal-dir")
		os.Exit(1)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "nrserver: -shards must be >= 1")
		os.Exit(1)
	}
	if *followerMode {
		if err := runFollower(*listen, *walDir, *fsync); err != nil {
			fmt.Fprintln(os.Stderr, "nrserver:", err)
			os.Exit(1)
		}
		return
	}
	repl := replConfig{replicas: *replicas, quorum: *quorum}
	if *replicaAddrs != "" {
		repl.addrs = strings.Split(*replicaAddrs, ",")
		repl.replicas = len(repl.addrs) + 1
	}
	if repl.replicas > 1 && *walDir == "" {
		fmt.Fprintln(os.Stderr, "nrserver: -replicas/-replica-addrs require -wal-dir")
		os.Exit(1)
	}
	if len(repl.addrs) > 0 && *shards != 1 {
		// A remote follower host serves one journal; fanning several
		// shards into it would interleave their record streams.
		fmt.Fprintln(os.Stderr, "nrserver: -replica-addrs requires -shards 1 (in-process -replicas supports any shard count)")
		os.Exit(1)
	}
	if repl.quorum > repl.replicas {
		fmt.Fprintf(os.Stderr, "nrserver: -quorum %d exceeds the %d replicas\n", repl.quorum, repl.replicas)
		os.Exit(1)
	}
	engine, cleanup, err := buildEngine(*state, *name, *shards, *storeDir, *walDir, *fsync, *archiveDir, *auditPath, *stepDeadline, *sweepEvery, repl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nrserver:", err)
		os.Exit(1)
	}
	defer cleanup()
	l, err := transport.ListenTCP(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nrserver:", err)
		os.Exit(1)
	}
	log.Printf("nrserver: provider %q listening on %s, store %s, %d shard(s)", *name, l.Addr(), *storeDir, *shards)

	var obsSrv *obshttp.Server
	if *obsAddr != "" {
		// /healthz flips to 503 the moment any shard's journal goes
		// read-only, so an orchestrator stops routing new sessions here
		// (a fresh txn may hash onto the sick shard) while the daemon
		// keeps draining the ones it has.
		obsSrv, err = obshttp.Start(*obsAddr, obs.Default(), engine.Health)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nrserver:", err)
			cleanup()
			os.Exit(1)
		}
		log.Printf("nrserver: observability endpoint on http://%s/metrics", obsSrv.Addr())
	}

	srvOpts := []core.ServerOption{
		core.ServerLogger(events),
		core.ServerMaxInflight(*maxInflight),
		core.ServerConnPending(*connPending),
		core.ServerBatchDrain(*batchVerify),
	}
	if *stepDeadline > 0 {
		policy := core.DeadlinePolicy{Step: *stepDeadline, Sweep: *sweepEvery}
		srvOpts = append(srvOpts, core.ServerExpiry(clock.Real(), policy.SweepInterval(), engine.ExpireStale))
	}
	srv := core.NewServer(engine, srvOpts...)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *ckptEvery > 0 {
		startCheckpointTickers(ctx, engine, *ckptEvery)
	}
	if *auditEvery > 0 {
		startSelfAudit(ctx, engine, *auditEvery)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), l) }()

	select {
	case err := <-done:
		if err != nil {
			log.Printf("nrserver: serve: %v", err)
			cleanup()
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Printf("nrserver: signal received, draining for up to %v", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("nrserver: shutdown: %v", err)
		}
		if obsSrv != nil {
			if err := obsSrv.Shutdown(sctx); err != nil {
				log.Printf("nrserver: observability shutdown: %v", err)
			}
		}
	}
	log.Printf("nrserver: stopped")
}

// startCheckpointTickers runs one checkpoint ticker per shard (one
// total for a single Provider), with start times staggered across the
// interval so N shards never compact simultaneously — compaction of
// one shard stalls only that shard's journal+mutate pairs, and the
// stagger keeps the fsync load flat.
func startCheckpointTickers(ctx context.Context, engine core.ProviderEngine, every time.Duration) {
	se, sharded := engine.(*core.ShardedEngine)
	n := 1
	if sharded {
		n = se.N()
	}
	for i := 0; i < n; i++ {
		go func(i int) {
			offset := every * time.Duration(i) / time.Duration(n)
			select {
			case <-ctx.Done():
				return
			case <-time.After(offset):
			}
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					var rep *core.CheckpointReport
					var err error
					if sharded {
						rep, err = se.CheckpointShard(i)
					} else {
						rep, err = engine.Checkpoint()
					}
					if err != nil {
						log.Printf("nrserver: shard %d checkpoint: %v", i, err)
						continue
					}
					log.Printf("nrserver: shard %d checkpoint at LSN %d (%d sessions archived, %d live retained)",
						i, rep.LSN, rep.Archived, rep.Retained)
				}
			}
		}(i)
	}
}

// startSelfAudit runs the provider's own storage-dwell sweep
// (DESIGN.md §14): on each tick every committed session's Merkle root
// is recomputed from the blob store and compared against the root the
// provider signed into its NRR. A divergence means this daemon would
// LOSE an audit challenge — surfacing it here lets an operator repair
// (or own up) before a client's challenge turns it into a conviction.
func startSelfAudit(ctx context.Context, engine core.ProviderEngine, every time.Duration) {
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				txns := engine.AuditableTxns()
				bad := 0
				for _, txn := range txns {
					if err := engine.VerifyStorage(txn); err != nil {
						bad++
						log.Printf("nrserver: self-audit: txn %s DIVERGES from committed root: %v", txn, err)
					}
				}
				if bad == 0 {
					log.Printf("nrserver: self-audit: %d session(s) verified against committed roots", len(txns))
				}
			}
		}
	}()
}

// replConfig carries the -replicas/-quorum/-replica-addrs settings
// into buildEngine.
type replConfig struct {
	replicas int
	quorum   int
	addrs    []string // remote follower daemons; empty = in-process followers
}

// effectiveQuorum resolves the -quorum default (2: leader + one
// follower, the paper-recommended 2-of-3 at R=3).
func effectiveQuorum(r replConfig) int {
	if r.quorum > 0 {
		return r.quorum
	}
	return 2
}

// runFollower is the -follower mode: serve the journal replication
// stream for walDir on the TCP listen address until SIGINT/SIGTERM.
// The leader dials in, reads our durable high-water mark from the
// hello, and streams (or snapshots) us the rest.
func runFollower(listen, walDir, fsync string) error {
	if walDir == "" {
		return fmt.Errorf("-follower requires -wal-dir")
	}
	policy, batch, err := wal.ParsePolicy(fsync)
	if err != nil {
		return err
	}
	w, err := wal.Open(walDir, wal.Options{Policy: policy, BatchSize: batch})
	if err != nil {
		return err
	}
	defer w.Close()
	l, err := transport.ListenTCP(listen)
	if err != nil {
		return err
	}
	host := replica.Serve(l, replica.NewFollower(w))
	log.Printf("nrserver: replication follower for %s listening on %s (durable LSN %d)", walDir, l.Addr(), w.LSN())
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("nrserver: follower stopping")
	return host.Close()
}

// buildEngine assembles the provider engine: a single Provider for
// shards == 1 (flat -wal-dir/-archive-dir layout, unchanged from
// earlier releases), or a ShardedEngine whose shard i journals under
// <wal-dir>/shard-NN and archives under <archive-dir>/shard-NN. The
// blob store, identity and audit log are shared — blobs are keyed by
// object, not by txn, and the audit chain is mutex-serialized.
//
// With repl.replicas > 1 each shard also gets a replication group:
// followers are in-process journals under <shard-wal-dir>/replica-0N,
// or the remote daemons in repl.addrs, and journal appends wait for
// repl.quorum durable copies before their protocol step is acked.
func buildEngine(state, name string, shards int, storeDir, walDir, fsync, archiveDir, auditPath string, stepDeadline, sweepEvery time.Duration, repl replConfig) (core.ProviderEngine, func(), error) {
	id, err := keystore.LoadIdentity(state, name)
	if err != nil {
		return nil, nil, err
	}
	world, err := keystore.LoadWorld(state)
	if err != nil {
		return nil, nil, err
	}
	store, err := storage.NewDisk(storeDir, nil)
	if err != nil {
		return nil, nil, err
	}

	cleanup := func() {}
	fail := func(err error) (core.ProviderEngine, func(), error) {
		cleanup()
		return nil, nil, err
	}

	providers := make([]*core.Provider, shards)
	anyJournal := false
	for i := range providers {
		opts := []core.Option{
			core.WithIdentity(id),
			core.WithCAPublicKey(world.CAPublicKey()),
			core.WithDirectory(world.Lookup),
			// Protocol counters share the default registry so they show up on
			// /metrics next to the runtime metrics, prefixed tpnr_.
			core.WithCounters(metrics.CountersOn(obs.Default(), "tpnr_")),
			core.WithStore(store),
		}
		if stepDeadline > 0 {
			opts = append(opts, core.WithDeadlinePolicy(core.DeadlinePolicy{Step: stepDeadline, Sweep: sweepEvery}))
		}
		if walDir != "" {
			policy, batch, err := wal.ParsePolicy(fsync)
			if err != nil {
				return fail(err)
			}
			dir := walDir
			if shards > 1 {
				dir = filepath.Join(walDir, shard.DirName(i))
			}
			journal, err := wal.Open(dir, wal.Options{Policy: policy, BatchSize: batch})
			if err != nil {
				return fail(err)
			}
			opts = append(opts, core.WithJournal(journal))
			prev := cleanup
			cleanup = func() { journal.Close(); prev() }
			anyJournal = true
		}
		if archiveDir != "" {
			dir := archiveDir
			if shards > 1 {
				dir = filepath.Join(archiveDir, shard.DirName(i))
			}
			cold, err := archive.Open(dir)
			if err != nil {
				return fail(err)
			}
			opts = append(opts, core.WithArchive(cold))
			prev := cleanup
			cleanup = func() { cold.Close(); prev() }
		}
		if providers[i], err = core.NewProvider(opts...); err != nil {
			return fail(err)
		}
	}

	if repl.replicas > 1 {
		if !anyJournal {
			return fail(fmt.Errorf("-replicas requires -wal-dir"))
		}
		policy, batch, err := wal.ParsePolicy(fsync)
		if err != nil {
			return fail(err)
		}
		for i, p := range providers {
			var dialers []replica.Dialer
			if len(repl.addrs) > 0 {
				for _, addr := range repl.addrs {
					addr := addr
					dialers = append(dialers, func() (transport.Conn, error) {
						return transport.DialTCP(addr)
					})
				}
			} else {
				shardDir := walDir
				if shards > 1 {
					shardDir = filepath.Join(walDir, shard.DirName(i))
				}
				for r := 1; r < repl.replicas; r++ {
					fw, err := wal.Open(filepath.Join(shardDir, fmt.Sprintf("replica-%02d", r)),
						wal.Options{Policy: policy, BatchSize: batch})
					if err != nil {
						return fail(err)
					}
					prev := cleanup
					cleanup = func() { fw.Close(); prev() }
					dialers = append(dialers, replica.Loopback(replica.NewFollower(fw)))
				}
			}
			g := replica.NewGroup(p.Journal(), dialers, replica.Options{
				Quorum: repl.quorum,
				Name:   fmt.Sprintf("replica_shard%02d", i),
			})
			p.SetReplicator(g)
			prev := cleanup
			cleanup = func() { g.Close(); prev() }
		}
		log.Printf("nrserver: journal replication on: %d replicas, quorum %d, %d shard group(s)",
			repl.replicas, effectiveQuorum(repl), shards)
	}

	var engine core.ProviderEngine = providers[0]
	if shards > 1 {
		se, err := core.NewShardedEngine(providers)
		if err != nil {
			return fail(err)
		}
		engine = se
	}

	if auditPath != "" {
		audit, err := auditlog.OpenFile(auditPath, nil, true)
		if err != nil {
			return fail(err)
		}
		if audit.Truncated() {
			log.Printf("nrserver: audit log %s had a torn tail from a crash; truncated", auditPath)
		}
		engine.SetAuditLog(audit)
		prev := cleanup
		cleanup = func() { audit.Close(); prev() }
	}

	if anyJournal {
		if err := recoverEngine(engine); err != nil {
			return fail(fmt.Errorf("journal recovery: %w", err))
		}
	}
	return engine, cleanup, nil
}

// recoverEngine replays the journal(s): all shards in parallel for a
// sharded engine, with a per-shard report line each, then the merged
// summary either way.
func recoverEngine(engine core.ProviderEngine) error {
	var rep *core.RecoveryReport
	if se, ok := engine.(*core.ShardedEngine); ok {
		start := time.Now()
		reps, err := se.RecoverShards(context.Background())
		if err != nil {
			return err
		}
		for i, r := range reps {
			log.Printf("nrserver: shard %d recovered %d records across %d txns (%d unfinished, torn tail: %v)",
				i, r.Records, len(r.Transactions), len(r.NeedsResolve), r.TornTail)
		}
		log.Printf("nrserver: %d shards recovered in parallel in %v", se.N(), time.Since(start).Round(time.Millisecond))
		rep = core.MergeRecoveryReports(reps)
	} else {
		r, err := engine.Recover(context.Background())
		if err != nil {
			return err
		}
		rep = r
	}
	log.Printf("nrserver: recovered %d journal records across %d txns (%d unfinished, %d aborts honored, torn tail: %v)",
		rep.Records, len(rep.Transactions), len(rep.NeedsResolve), len(rep.HonoredAborts), rep.TornTail)
	log.Printf("nrserver: recovery bounded by snapshot at LSN %d: %d tail records replayed, %d archived sessions untouched (%d tail records skipped as archived)",
		rep.SnapshotLSN, rep.TailRecords, rep.ArchivedSessions, rep.SkippedArchived)
	return nil
}
