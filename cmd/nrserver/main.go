// Command nrserver runs the TPNR cloud storage provider (Bob) over
// TCP, backed by a disk blob store.
//
//	nrserver -state ./state -name bob -listen 127.0.0.1:9000 -store ./blobs
//
// The state directory must have been provisioned with pkitool init.
// SIGINT/SIGTERM triggers a graceful shutdown: the accept loop stops,
// in-flight protocol steps drain (bounded by -drain), then connections
// close.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/keystore"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/transport"
)

func main() {
	state := flag.String("state", "./state", "PKI state directory")
	name := flag.String("name", "bob", "this provider's identity name")
	listen := flag.String("listen", "127.0.0.1:9000", "TCP listen address")
	storeDir := flag.String("store", "./blobs", "blob store directory")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	flag.Parse()

	provider, err := buildProvider(*state, *name, *storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nrserver:", err)
		os.Exit(1)
	}
	l, err := transport.ListenTCP(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nrserver:", err)
		os.Exit(1)
	}
	log.Printf("nrserver: provider %q listening on %s, store %s", *name, l.Addr(), *storeDir)

	srv := core.NewServer(provider)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), l) }()

	select {
	case err := <-done:
		if err != nil {
			log.Printf("nrserver: serve: %v", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Printf("nrserver: signal received, draining for up to %v", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("nrserver: shutdown: %v", err)
		}
	}
	log.Printf("nrserver: stopped")
}

func buildProvider(state, name, storeDir string) (*core.Provider, error) {
	id, err := keystore.LoadIdentity(state, name)
	if err != nil {
		return nil, err
	}
	world, err := keystore.LoadWorld(state)
	if err != nil {
		return nil, err
	}
	caKey, err := world.CAKey()
	if err != nil {
		return nil, err
	}
	store, err := storage.NewDisk(storeDir, nil)
	if err != nil {
		return nil, err
	}
	return core.NewProvider(
		core.WithIdentity(id),
		core.WithCAKey(caKey),
		core.WithDirectory(world.Lookup),
		core.WithCounters(&metrics.Counters{}),
		core.WithStore(store),
	)
}
