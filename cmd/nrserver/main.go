// Command nrserver runs the TPNR cloud storage provider (Bob) over
// TCP, backed by a disk blob store.
//
//	nrserver -state ./state -name bob -listen 127.0.0.1:9000 -store ./blobs \
//	         -wal-dir ./wal -fsync always -audit ./audit.log
//
// The state directory must have been provisioned with pkitool init.
// With -wal-dir, every protocol transition is journaled before it is
// acked, and a restart replays the journal: evidence and session state
// come back, and any abort the provider acked before the crash is
// honored by re-deleting the object. With -audit, the hash-chained
// audit log is persisted (and fsynced per entry) so the trail backing
// arbitration survives a crash too.
// SIGINT/SIGTERM triggers a graceful shutdown: the accept loop stops,
// in-flight protocol steps drain (bounded by -drain), then connections
// close.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/archive"
	"repro/internal/auditlog"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/keystore"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wal"
)

func main() {
	state := flag.String("state", "./state", "PKI state directory")
	name := flag.String("name", "bob", "this provider's identity name")
	listen := flag.String("listen", "127.0.0.1:9000", "TCP listen address")
	storeDir := flag.String("store", "./blobs", "blob store directory")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	walDir := flag.String("wal-dir", "", "crash journal directory (empty = no journal)")
	fsync := flag.String("fsync", "always", "journal fsync policy: always, none, batch[:<n>], or group[:<max-batch>]")
	archiveDir := flag.String("archive-dir", "", "cold evidence archive directory; checkpoints compact terminal sessions into it (empty = keep all evidence hot)")
	ckptEvery := flag.Duration("checkpoint-every", 0, "journal checkpoint/compaction interval; bounds crash-recovery replay to one interval of traffic (0 = never; requires -wal-dir)")
	auditPath := flag.String("audit", "", "persist the audit log to this file (fsynced per entry)")
	obsAddr := flag.String("obs-addr", "", "observability HTTP listen address serving /metrics, /healthz and /debug/pprof (empty = disabled)")
	logLevel := flag.String("log-level", "info", "structured event log level: debug, info, warn, or error")
	stepDeadline := flag.Duration("step-deadline", 0, "per-step protocol deadline; stale sessions are auto-aborted with an expiry receipt (0 = no deadline)")
	sweepEvery := flag.Duration("sweep-interval", 0, "how often the expiry reaper scans for stale sessions (0 = step-deadline/4, min 10ms)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent protocol handlers before shedding with a retryable overload frame (0 = unlimited)")
	connPending := flag.Int("conn-pending", 1, "per-connection pipelined request cap (1 = serial)")
	batchVerify := flag.Int("batch-verify", 0, "per-connection batch-drain round cap: queued inbound messages are decrypted individually but signature-verified in one batched call (0/1 = off; overrides -conn-pending)")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nrserver:", err)
		os.Exit(1)
	}
	events := obs.NewLogger(os.Stderr, lvl)

	if *ckptEvery > 0 && *walDir == "" {
		fmt.Fprintln(os.Stderr, "nrserver: -checkpoint-every requires -wal-dir")
		os.Exit(1)
	}
	provider, cleanup, err := buildProvider(*state, *name, *storeDir, *walDir, *fsync, *archiveDir, *auditPath, *stepDeadline, *sweepEvery)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nrserver:", err)
		os.Exit(1)
	}
	defer cleanup()
	l, err := transport.ListenTCP(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nrserver:", err)
		os.Exit(1)
	}
	log.Printf("nrserver: provider %q listening on %s, store %s", *name, l.Addr(), *storeDir)

	var obsSrv *obshttp.Server
	if *obsAddr != "" {
		// /healthz flips to 503 the moment the journal goes read-only, so
		// an orchestrator stops routing new sessions here while the daemon
		// keeps draining the ones it has.
		obsSrv, err = obshttp.Start(*obsAddr, obs.Default(), provider.Health)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nrserver:", err)
			cleanup()
			os.Exit(1)
		}
		log.Printf("nrserver: observability endpoint on http://%s/metrics", obsSrv.Addr())
	}

	srvOpts := []core.ServerOption{
		core.ServerLogger(events),
		core.ServerMaxInflight(*maxInflight),
		core.ServerConnPending(*connPending),
		core.ServerBatchDrain(*batchVerify),
	}
	if *stepDeadline > 0 {
		policy := core.DeadlinePolicy{Step: *stepDeadline, Sweep: *sweepEvery}
		srvOpts = append(srvOpts, core.ServerExpiry(clock.Real(), policy.SweepInterval(), provider.ExpireStale))
	}
	srv := core.NewServer(provider, srvOpts...)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *ckptEvery > 0 {
		go func() {
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					rep, err := provider.Checkpoint()
					if err != nil {
						log.Printf("nrserver: checkpoint: %v", err)
						continue
					}
					log.Printf("nrserver: checkpoint at LSN %d (%d sessions archived, %d live retained)",
						rep.LSN, rep.Archived, rep.Retained)
				}
			}
		}()
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), l) }()

	select {
	case err := <-done:
		if err != nil {
			log.Printf("nrserver: serve: %v", err)
			cleanup()
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Printf("nrserver: signal received, draining for up to %v", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("nrserver: shutdown: %v", err)
		}
		if obsSrv != nil {
			if err := obsSrv.Shutdown(sctx); err != nil {
				log.Printf("nrserver: observability shutdown: %v", err)
			}
		}
	}
	log.Printf("nrserver: stopped")
}

func buildProvider(state, name, storeDir, walDir, fsync, archiveDir, auditPath string, stepDeadline, sweepEvery time.Duration) (*core.Provider, func(), error) {
	id, err := keystore.LoadIdentity(state, name)
	if err != nil {
		return nil, nil, err
	}
	world, err := keystore.LoadWorld(state)
	if err != nil {
		return nil, nil, err
	}
	store, err := storage.NewDisk(storeDir, nil)
	if err != nil {
		return nil, nil, err
	}
	opts := []core.Option{
		core.WithIdentity(id),
		core.WithCAPublicKey(world.CAPublicKey()),
		core.WithDirectory(world.Lookup),
		// Protocol counters share the default registry so they show up on
		// /metrics next to the runtime metrics, prefixed tpnr_.
		core.WithCounters(metrics.CountersOn(obs.Default(), "tpnr_")),
		core.WithStore(store),
	}
	if stepDeadline > 0 {
		opts = append(opts, core.WithDeadlinePolicy(core.DeadlinePolicy{Step: stepDeadline, Sweep: sweepEvery}))
	}

	cleanup := func() {}
	var journal *wal.WAL
	if walDir != "" {
		policy, batch, err := wal.ParsePolicy(fsync)
		if err != nil {
			return nil, nil, err
		}
		journal, err = wal.Open(walDir, wal.Options{Policy: policy, BatchSize: batch})
		if err != nil {
			return nil, nil, err
		}
		opts = append(opts, core.WithJournal(journal))
		cleanup = func() { journal.Close() }
	}
	if archiveDir != "" {
		cold, err := archive.Open(archiveDir)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		opts = append(opts, core.WithArchive(cold))
		prev := cleanup
		cleanup = func() { cold.Close(); prev() }
	}

	provider, err := core.NewProvider(opts...)
	if err != nil {
		cleanup()
		return nil, nil, err
	}

	if auditPath != "" {
		audit, err := auditlog.OpenFile(auditPath, nil, true)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		if audit.Truncated() {
			log.Printf("nrserver: audit log %s had a torn tail from a crash; truncated", auditPath)
		}
		provider.SetAuditLog(audit)
		prev := cleanup
		cleanup = func() { audit.Close(); prev() }
	}

	if journal != nil {
		rep, err := provider.Recover(context.Background())
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("journal recovery: %w", err)
		}
		log.Printf("nrserver: recovered %d journal records across %d txns (%d unfinished, %d aborts honored, torn tail: %v)",
			rep.Records, len(rep.Transactions), len(rep.NeedsResolve), len(rep.HonoredAborts), rep.TornTail)
		log.Printf("nrserver: recovery bounded by snapshot at LSN %d: %d tail records replayed, %d archived sessions untouched (%d tail records skipped as archived)",
			rep.SnapshotLSN, rep.TailRecords, rep.ArchivedSessions, rep.SkippedArchived)
	}
	return provider, cleanup, nil
}
