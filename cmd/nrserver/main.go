// Command nrserver runs the TPNR cloud storage provider (Bob) over
// TCP, backed by a disk blob store.
//
//	nrserver -state ./state -name bob -listen 127.0.0.1:9000 -store ./blobs
//
// The state directory must have been provisioned with pkitool init.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/keystore"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/transport"
)

func main() {
	state := flag.String("state", "./state", "PKI state directory")
	name := flag.String("name", "bob", "this provider's identity name")
	listen := flag.String("listen", "127.0.0.1:9000", "TCP listen address")
	storeDir := flag.String("store", "./blobs", "blob store directory")
	flag.Parse()

	provider, err := buildProvider(*state, *name, *storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nrserver:", err)
		os.Exit(1)
	}
	l, err := transport.ListenTCP(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nrserver:", err)
		os.Exit(1)
	}
	log.Printf("nrserver: provider %q listening on %s, store %s", *name, l.Addr(), *storeDir)
	for {
		conn, err := l.Accept()
		if err != nil {
			log.Printf("nrserver: accept: %v", err)
			return
		}
		go func() {
			if err := provider.Serve(conn); err != nil {
				log.Printf("nrserver: connection: %v", err)
			}
		}()
	}
}

func buildProvider(state, name, storeDir string) (*core.Provider, error) {
	id, err := keystore.LoadIdentity(state, name)
	if err != nil {
		return nil, err
	}
	world, err := keystore.LoadWorld(state)
	if err != nil {
		return nil, err
	}
	caKey, err := world.CAKey()
	if err != nil {
		return nil, err
	}
	store, err := storage.NewDisk(storeDir, nil)
	if err != nil {
		return nil, err
	}
	return core.NewProvider(core.Options{
		Identity:  id,
		CAKey:     caKey,
		Directory: world.Lookup,
		Counters:  &metrics.Counters{},
	}, store)
}
