// Command nrclient is the TPNR storage client (Alice). It runs the
// protocol against an nrserver (and a ttpd for resolve), persisting
// all evidence to the state directory so disputes can be arbitrated
// later by arbiterd.
//
// Usage:
//
//	nrclient -state ./state upload   -txn t1 -key docs/a -file report.pdf
//	nrclient -state ./state download -txn t2 -key docs/a -upload-txn t1 -out got.pdf
//	nrclient -state ./state abort    -txn t1 -reason "peer silent"
//	nrclient -state ./state resolve  -txn t1 -report "no NRR before deadline"
//	nrclient -state ./state audit    -txn t1 -audit-challenges 4
//
// audit runs a storage-dwell challenge (DESIGN.md §14) against the
// provider: random Merkle leaves of the upload are challenged and the
// provider must answer with inclusion proofs under the root it signed
// into the NRR — without the client re-downloading anything. A failed
// or ignored challenge exits non-zero; the journaled challenge is
// itself conviction material for arbitration.
//
// Common flags: -name alice -server 127.0.0.1:9000 -ttp 127.0.0.1:9001
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/evidence"
	"repro/internal/keystore"
	"repro/internal/metrics"
	"repro/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	op := os.Args[1]
	fs := flag.NewFlagSet(op, flag.ExitOnError)
	state := fs.String("state", "./state", "PKI state directory")
	name := fs.String("name", "alice", "client identity name")
	providerName := fs.String("provider", "bob", "provider identity name")
	ttpName := fs.String("ttp-name", "ttp", "TTP identity name")
	server := fs.String("server", "127.0.0.1:9000", "provider TCP address")
	ttpAddr := fs.String("ttp", "127.0.0.1:9001", "TTP TCP address")
	timeout := fs.Duration("timeout", 10*time.Second, "response timeout")

	txn := fs.String("txn", "", "transaction ID")
	key := fs.String("key", "", "object key")
	file := fs.String("file", "", "file to upload")
	out := fs.String("out", "", "file to write downloaded data to")
	uploadTxn := fs.String("upload-txn", "", "upload transaction whose agreed digest the download must match")
	reason := fs.String("reason", "client requested cancellation", "abort reason")
	report := fs.String("report", "no response before time limit", "resolve anomaly report")
	auditN := fs.Int("audit-challenges", core.DefaultAuditChallenges, "random leaves per storage-dwell audit challenge")
	fs.Parse(os.Args[2:])

	if *txn == "" {
		fail(errors.New("-txn is required"))
	}
	client, err := buildClient(*state, *name, *providerName, *ttpName, *timeout)
	if err != nil {
		fail(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	switch op {
	case "upload":
		data, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		conn := dial(*server)
		defer conn.Close()
		res, err := client.Upload(ctx, conn, *txn, *key, data)
		if err != nil {
			fail(err)
		}
		saveEvidence(*state, *txn, evidence.RoleOwn, res.NRO)
		saveEvidence(*state, *txn, evidence.RolePeer, res.NRR)
		fmt.Printf("uploaded %d bytes as %q (txn %s)\n", len(data), *key, *txn)
		fmt.Printf("agreed md5: %s\n", res.NRR.Header.DataMD5.Hex())
		fmt.Println("evidence archived: NRO (own), NRR (provider-signed)")

	case "download":
		conn := dial(*server)
		defer conn.Close()
		// Reload the agreed receipt from the evidence archive, if any.
		if *uploadTxn != "" {
			if nrr, err := keystore.LoadEvidence(*state, *uploadTxn, evidence.RolePeer, evidence.KindNRR); err == nil {
				client.Archive().Put(*uploadTxn, evidence.RolePeer, nrr)
			}
		}
		res, err := client.Download(ctx, conn, *txn, *key, *uploadTxn)
		if err != nil {
			if errors.Is(err, core.ErrIntegrity) && res != nil {
				saveEvidence(*state, *txn, evidence.RolePeer, res.Receipt)
				fmt.Fprintln(os.Stderr, "INTEGRITY FAILURE: served data does not match the agreed upload digest")
				fmt.Fprintln(os.Stderr, "the provider's receipt over the tampered bytes has been archived for arbitration")
				os.Exit(3)
			}
			fail(err)
		}
		saveEvidence(*state, *txn, evidence.RolePeer, res.Receipt)
		if *out != "" {
			if err := os.WriteFile(*out, res.Data, 0o644); err != nil {
				fail(err)
			}
		}
		fmt.Printf("downloaded %d bytes of %q (integrity verified against upload: %v)\n",
			len(res.Data), *key, res.AgreedUpload != nil && res.IntegrityOK)

	case "abort":
		conn := dial(*server)
		defer conn.Close()
		res, err := client.Abort(ctx, conn, *txn, *reason)
		if err != nil {
			fail(err)
		}
		saveEvidence(*state, *txn, evidence.RolePeer, res.Receipt)
		fmt.Printf("abort of %s: accepted=%v (%s)\n", *txn, res.Accepted, res.Receipt.Header.Note)

	case "resolve":
		// Resolve needs the archived own NRO.
		if nro, err := keystore.LoadEvidence(*state, *txn, evidence.RoleOwn, evidence.KindNRO); err == nil {
			client.Archive().Put(*txn, evidence.RoleOwn, nro)
		} else {
			fail(fmt.Errorf("no archived NRO for %s (did the upload run from this state dir?): %w", *txn, err))
		}
		conn := dial(*ttpAddr)
		defer conn.Close()
		res, err := client.Resolve(ctx, conn, *txn, *report)
		if err != nil {
			fail(err)
		}
		fmt.Printf("resolve outcome: %s\n", res.Outcome)
		if res.PeerEvidence != nil {
			saveEvidence(*state, *txn, evidence.RolePeer, res.PeerEvidence)
			fmt.Println("provider evidence relayed by TTP and archived")
		}
		if res.TTPStatement != nil {
			saveEvidence(*state, *txn, evidence.RolePeer, res.TTPStatement)
			fmt.Println("TTP statement archived")
		}

	case "audit":
		// The audit verifies responses against the root commitment inside
		// the archived NRR; reload it from the state directory first.
		if nrr, err := keystore.LoadEvidence(*state, *txn, evidence.RolePeer, evidence.KindNRR); err == nil {
			client.Archive().Put(*txn, evidence.RolePeer, nrr)
		} else {
			fail(fmt.Errorf("no archived NRR for %s (did the upload run from this state dir?): %w", *txn, err))
		}
		// Prior audit rounds too: their headers carry the sequence
		// numbers this identity already burned against the provider's
		// replay guard, and AuditObject derives its sequence floor from
		// whatever the archive holds.
		if ch, err := keystore.LoadEvidence(*state, *txn, evidence.RoleOwn, evidence.KindAuditChallenge); err == nil {
			client.Archive().Put(*txn, evidence.RoleOwn, ch)
		}
		if resp, err := keystore.LoadEvidence(*state, *txn, evidence.RolePeer, evidence.KindAuditResponse); err == nil {
			client.Archive().Put(*txn, evidence.RolePeer, resp)
		}
		conn := dial(*server)
		defer conn.Close()
		rep, err := client.AuditObject(ctx, conn, *txn, *auditN)
		// Persist the latest challenge whatever the outcome: on failure
		// it is the conviction material arbiterd reads, and its recorded
		// sequence keeps the next audit run from reusing numbers the
		// provider has already seen.
		if ch, cerr := client.Archive().ByKind(*txn, evidence.RoleOwn, evidence.KindAuditChallenge); cerr == nil {
			saveEvidence(*state, *txn, evidence.RoleOwn, ch)
		}
		// The response too, pass or fail: a provider-signed answer that
		// fails the proof convicts immediately at arbitration — no need
		// to wait out the challenge deadline the way silence does.
		if resp, rerr := client.Archive().ByKind(*txn, evidence.RolePeer, evidence.KindAuditResponse); rerr == nil {
			saveEvidence(*state, *txn, evidence.RolePeer, resp)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "nrclient: AUDIT FAILED for %s: %v\n", *txn, err)
			fmt.Fprintln(os.Stderr, "the journaled audit evidence is conviction material for arbitration")
			os.Exit(3)
		}
		fmt.Printf("audit of %s passed: %d/%d leaves proved against committed root %s in %v\n",
			*txn, len(rep.Response.Entries), len(rep.Challenge.Indices), rep.Root, rep.Latency.Round(time.Millisecond))

	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: nrclient {upload|download|abort|resolve|audit} [flags]")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nrclient:", err)
	os.Exit(1)
}

func dial(addr string) transport.Conn {
	conn, err := transport.DialTCP(addr)
	if err != nil {
		fail(err)
	}
	return conn
}

func buildClient(state, name, providerName, ttpName string, timeout time.Duration) (*core.Client, error) {
	id, err := keystore.LoadIdentity(state, name)
	if err != nil {
		return nil, err
	}
	world, err := keystore.LoadWorld(state)
	if err != nil {
		return nil, err
	}
	return core.NewClient(providerName, ttpName,
		core.WithIdentity(id),
		core.WithCAPublicKey(world.CAPublicKey()),
		core.WithDirectory(world.Lookup),
		core.WithCounters(&metrics.Counters{}),
		core.WithResponseTimeout(timeout),
	)
}

func saveEvidence(state, txn string, role evidence.Role, ev *evidence.Evidence) {
	if ev == nil {
		return
	}
	if err := keystore.SaveEvidence(state, txn, role, ev); err != nil {
		fmt.Fprintln(os.Stderr, "nrclient: archiving evidence:", err)
	}
}
