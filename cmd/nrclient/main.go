// Command nrclient is the TPNR storage client (Alice). It runs the
// protocol against an nrserver (and a ttpd for resolve), persisting
// all evidence to the state directory so disputes can be arbitrated
// later by arbiterd.
//
// Usage:
//
//	nrclient -state ./state upload   -txn t1 -key docs/a -file report.pdf
//	nrclient -state ./state download -txn t2 -key docs/a -upload-txn t1 -out got.pdf
//	nrclient -state ./state abort    -txn t1 -reason "peer silent"
//	nrclient -state ./state resolve  -txn t1 -report "no NRR before deadline"
//
// Common flags: -name alice -server 127.0.0.1:9000 -ttp 127.0.0.1:9001
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/evidence"
	"repro/internal/keystore"
	"repro/internal/metrics"
	"repro/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	op := os.Args[1]
	fs := flag.NewFlagSet(op, flag.ExitOnError)
	state := fs.String("state", "./state", "PKI state directory")
	name := fs.String("name", "alice", "client identity name")
	providerName := fs.String("provider", "bob", "provider identity name")
	ttpName := fs.String("ttp-name", "ttp", "TTP identity name")
	server := fs.String("server", "127.0.0.1:9000", "provider TCP address")
	ttpAddr := fs.String("ttp", "127.0.0.1:9001", "TTP TCP address")
	timeout := fs.Duration("timeout", 10*time.Second, "response timeout")

	txn := fs.String("txn", "", "transaction ID")
	key := fs.String("key", "", "object key")
	file := fs.String("file", "", "file to upload")
	out := fs.String("out", "", "file to write downloaded data to")
	uploadTxn := fs.String("upload-txn", "", "upload transaction whose agreed digest the download must match")
	reason := fs.String("reason", "client requested cancellation", "abort reason")
	report := fs.String("report", "no response before time limit", "resolve anomaly report")
	fs.Parse(os.Args[2:])

	if *txn == "" {
		fail(errors.New("-txn is required"))
	}
	client, err := buildClient(*state, *name, *providerName, *ttpName, *timeout)
	if err != nil {
		fail(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	switch op {
	case "upload":
		data, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		conn := dial(*server)
		defer conn.Close()
		res, err := client.Upload(ctx, conn, *txn, *key, data)
		if err != nil {
			fail(err)
		}
		saveEvidence(*state, *txn, evidence.RoleOwn, res.NRO)
		saveEvidence(*state, *txn, evidence.RolePeer, res.NRR)
		fmt.Printf("uploaded %d bytes as %q (txn %s)\n", len(data), *key, *txn)
		fmt.Printf("agreed md5: %s\n", res.NRR.Header.DataMD5.Hex())
		fmt.Println("evidence archived: NRO (own), NRR (provider-signed)")

	case "download":
		conn := dial(*server)
		defer conn.Close()
		// Reload the agreed receipt from the evidence archive, if any.
		if *uploadTxn != "" {
			if nrr, err := keystore.LoadEvidence(*state, *uploadTxn, evidence.RolePeer, evidence.KindNRR); err == nil {
				client.Archive().Put(*uploadTxn, evidence.RolePeer, nrr)
			}
		}
		res, err := client.Download(ctx, conn, *txn, *key, *uploadTxn)
		if err != nil {
			if errors.Is(err, core.ErrIntegrity) && res != nil {
				saveEvidence(*state, *txn, evidence.RolePeer, res.Receipt)
				fmt.Fprintln(os.Stderr, "INTEGRITY FAILURE: served data does not match the agreed upload digest")
				fmt.Fprintln(os.Stderr, "the provider's receipt over the tampered bytes has been archived for arbitration")
				os.Exit(3)
			}
			fail(err)
		}
		saveEvidence(*state, *txn, evidence.RolePeer, res.Receipt)
		if *out != "" {
			if err := os.WriteFile(*out, res.Data, 0o644); err != nil {
				fail(err)
			}
		}
		fmt.Printf("downloaded %d bytes of %q (integrity verified against upload: %v)\n",
			len(res.Data), *key, res.AgreedUpload != nil && res.IntegrityOK)

	case "abort":
		conn := dial(*server)
		defer conn.Close()
		res, err := client.Abort(ctx, conn, *txn, *reason)
		if err != nil {
			fail(err)
		}
		saveEvidence(*state, *txn, evidence.RolePeer, res.Receipt)
		fmt.Printf("abort of %s: accepted=%v (%s)\n", *txn, res.Accepted, res.Receipt.Header.Note)

	case "resolve":
		// Resolve needs the archived own NRO.
		if nro, err := keystore.LoadEvidence(*state, *txn, evidence.RoleOwn, evidence.KindNRO); err == nil {
			client.Archive().Put(*txn, evidence.RoleOwn, nro)
		} else {
			fail(fmt.Errorf("no archived NRO for %s (did the upload run from this state dir?): %w", *txn, err))
		}
		conn := dial(*ttpAddr)
		defer conn.Close()
		res, err := client.Resolve(ctx, conn, *txn, *report)
		if err != nil {
			fail(err)
		}
		fmt.Printf("resolve outcome: %s\n", res.Outcome)
		if res.PeerEvidence != nil {
			saveEvidence(*state, *txn, evidence.RolePeer, res.PeerEvidence)
			fmt.Println("provider evidence relayed by TTP and archived")
		}
		if res.TTPStatement != nil {
			saveEvidence(*state, *txn, evidence.RolePeer, res.TTPStatement)
			fmt.Println("TTP statement archived")
		}

	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: nrclient {upload|download|abort|resolve} [flags]")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nrclient:", err)
	os.Exit(1)
}

func dial(addr string) transport.Conn {
	conn, err := transport.DialTCP(addr)
	if err != nil {
		fail(err)
	}
	return conn
}

func buildClient(state, name, providerName, ttpName string, timeout time.Duration) (*core.Client, error) {
	id, err := keystore.LoadIdentity(state, name)
	if err != nil {
		return nil, err
	}
	world, err := keystore.LoadWorld(state)
	if err != nil {
		return nil, err
	}
	return core.NewClient(providerName, ttpName,
		core.WithIdentity(id),
		core.WithCAPublicKey(world.CAPublicKey()),
		core.WithDirectory(world.Lookup),
		core.WithCounters(&metrics.Counters{}),
		core.WithResponseTimeout(timeout),
	)
}

func saveEvidence(state, txn string, role evidence.Role, ev *evidence.Evidence) {
	if ev == nil {
		return
	}
	if err := keystore.SaveEvidence(state, txn, role, ev); err != nil {
		fmt.Fprintln(os.Stderr, "nrclient: archiving evidence:", err)
	}
}
