// Command ttpd runs the TPNR trusted third party over TCP. It needs to
// know how to reach the other parties for the in-line Resolve queries;
// peers are given as repeated -peer name=addr flags.
//
//	ttpd -state ./state -name ttp -listen 127.0.0.1:9001 -peer bob=127.0.0.1:9000 \
//	     -wal-dir ./wal -fsync always -audit ./audit.log
//
// With -wal-dir, every resolve step (evidence received, procedure
// opened, statement issued) is journaled before the reply goes out; a
// restart replays the journal and reports resolves left open by the
// crash. With -audit, resolve open/close events are persisted to a
// hash-chained file, fsynced per entry.
// SIGINT/SIGTERM triggers a graceful shutdown that drains in-flight
// resolutions before closing connections.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/archive"
	"repro/internal/auditlog"
	"repro/internal/breaker"
	"repro/internal/core"
	"repro/internal/keystore"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/replica"
	"repro/internal/transport"
	"repro/internal/ttp"
	"repro/internal/wal"
)

// peerFlags collects repeated -peer name=addr flags.
type peerFlags map[string]string

func (p peerFlags) String() string { return fmt.Sprint(map[string]string(p)) }

func (p peerFlags) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=addr, got %q", v)
	}
	p[name] = addr
	return nil
}

func main() {
	state := flag.String("state", "./state", "PKI state directory")
	name := flag.String("name", "ttp", "this TTP's identity name")
	listen := flag.String("listen", "127.0.0.1:9001", "TCP listen address")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	walDir := flag.String("wal-dir", "", "crash journal directory (empty = no journal)")
	fsync := flag.String("fsync", "always", "journal fsync policy: always, none, batch[:<n>], or group[:<max-batch>]")
	archiveDir := flag.String("archive-dir", "", "cold evidence archive directory; checkpoints compact closed resolves into it (empty = keep all evidence hot)")
	ckptEvery := flag.Duration("checkpoint-every", 0, "journal checkpoint/compaction interval; bounds crash-recovery replay to one interval of traffic (0 = never; requires -wal-dir)")
	auditPath := flag.String("audit", "", "persist the audit log to this file (fsynced per entry)")
	obsAddr := flag.String("obs-addr", "", "observability HTTP listen address serving /metrics, /healthz and /debug/pprof (empty = disabled)")
	logLevel := flag.String("log-level", "info", "structured event log level: debug, info, warn, or error")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent resolve handlers before shedding with a retryable overload frame (0 = unlimited)")
	connPending := flag.Int("conn-pending", 1, "per-connection pipelined request cap (1 = serial)")
	brWindow := flag.Int("breaker-window", 16, "peer-dial circuit breaker: outcomes in the sliding window")
	brRatio := flag.Float64("breaker-ratio", 0.5, "peer-dial circuit breaker: failure ratio that trips the breaker open")
	brCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "peer-dial circuit breaker: open-state cooldown before a half-open probe (0 = breaker disabled)")
	auditEvery := flag.Duration("audit-interval", 0, "public-auditor sweep interval: challenge every provider whose resolve relayed a storage-dwell commitment (0 = never)")
	auditN := flag.Int("audit-challenges", 4, "random leaves per public-auditor challenge")
	replicas := flag.Int("replicas", 1, "resolve-journal replication factor: the leader plus replicas-1 in-process follower journals under <wal-dir>/replica-0N (requires -wal-dir; 1 = no replication)")
	quorum := flag.Int("quorum", 0, "durable copies (leader included) each resolve-journal append must reach before the statement is issued (0 = min(2, replicas))")
	peers := peerFlags{}
	flag.Var(peers, "peer", "peer address mapping name=host:port (repeatable)")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttpd:", err)
		os.Exit(1)
	}
	events := obs.NewLogger(os.Stderr, lvl)

	id, err := keystore.LoadIdentity(*state, *name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttpd:", err)
		os.Exit(1)
	}
	world, err := keystore.LoadWorld(*state)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttpd:", err)
		os.Exit(1)
	}
	opts := []core.Option{
		core.WithIdentity(id),
		core.WithCAPublicKey(world.CAPublicKey()),
		core.WithDirectory(world.Lookup),
		// Protocol counters share the default registry so they show up on
		// /metrics next to the runtime metrics, prefixed tpnr_.
		core.WithCounters(metrics.CountersOn(obs.Default(), "tpnr_")),
	}
	cleanup := func() {}
	var journal *wal.WAL
	if *walDir != "" {
		policy, batch, err := wal.ParsePolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ttpd:", err)
			os.Exit(1)
		}
		journal, err = wal.Open(*walDir, wal.Options{Policy: policy, BatchSize: batch})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ttpd:", err)
			os.Exit(1)
		}
		opts = append(opts, core.WithJournal(journal))
		cleanup = func() { journal.Close() }
	}
	if *replicas > 1 && journal == nil {
		fmt.Fprintln(os.Stderr, "ttpd: -replicas requires -wal-dir")
		os.Exit(1)
	}
	if *quorum > *replicas {
		fmt.Fprintf(os.Stderr, "ttpd: -quorum %d exceeds the %d replicas\n", *quorum, *replicas)
		os.Exit(1)
	}
	// Resolve statements are evidence too: with -replicas the TTP's
	// journal is quorum-replicated exactly like the provider's, so the
	// statement a claimant walks away with survives losing this node.
	var replGroup *replica.Group
	if *replicas > 1 {
		policy, batch, _ := wal.ParsePolicy(*fsync)
		var dialers []replica.Dialer
		for r := 1; r < *replicas; r++ {
			fw, err := wal.Open(filepath.Join(*walDir, fmt.Sprintf("replica-%02d", r)),
				wal.Options{Policy: policy, BatchSize: batch})
			if err != nil {
				fmt.Fprintln(os.Stderr, "ttpd:", err)
				cleanup()
				os.Exit(1)
			}
			prev := cleanup
			cleanup = func() { fw.Close(); prev() }
			dialers = append(dialers, replica.Loopback(replica.NewFollower(fw)))
		}
		replGroup = replica.NewGroup(journal, dialers, replica.Options{
			Quorum: *quorum,
			Name:   "ttp_replica",
		})
		opts = append(opts, core.WithReplicator(replGroup))
		prev := cleanup
		cleanup = func() { replGroup.Close(); prev() }
		log.Printf("ttpd: resolve-journal replication on: %d replicas", *replicas)
	}
	if *ckptEvery > 0 && *walDir == "" {
		fmt.Fprintln(os.Stderr, "ttpd: -checkpoint-every requires -wal-dir")
		os.Exit(1)
	}
	if *archiveDir != "" {
		cold, err := archive.Open(*archiveDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ttpd:", err)
			cleanup()
			os.Exit(1)
		}
		opts = append(opts, core.WithArchive(cold))
		prev := cleanup
		cleanup = func() { cold.Close(); prev() }
	}
	// cleanup grows as resources open; defer the variable, not its
	// current value.
	defer func() { cleanup() }()

	// The peer-dial circuit breaker keeps a flapping counterparty from
	// dragging every resolve through a full dial-and-wait: once recent
	// dials fail past -breaker-ratio, further queries fast-fail to the
	// signed "peer-unreachable" statement until a half-open probe
	// succeeds. Resolve stays decisive either way.
	var br *breaker.Breaker
	if *brCooldown > 0 {
		br = breaker.New(breaker.Options{
			Window:       *brWindow,
			FailureRatio: *brRatio,
			Cooldown:     *brCooldown,
			Registry:     obs.Default(),
			Name:         "ttp_peer_dial",
		})
	}
	server, err := ttp.New(func(ctx context.Context, partyID string) (transport.Conn, error) {
		addr, ok := peers[partyID]
		if !ok {
			return nil, fmt.Errorf("ttpd: no -peer mapping for %q", partyID)
		}
		if br != nil && !br.Allow() {
			return nil, fmt.Errorf("ttpd: peer dial breaker open for %q", partyID)
		}
		conn, err := transport.DialTCPContext(ctx, addr)
		if br != nil {
			if err != nil {
				br.OnFailure()
			} else {
				br.OnSuccess()
			}
		}
		return conn, err
	}, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttpd:", err)
		cleanup()
		os.Exit(1)
	}

	if *auditPath != "" {
		audit, err := auditlog.OpenFile(*auditPath, nil, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ttpd:", err)
			cleanup()
			os.Exit(1)
		}
		if audit.Truncated() {
			log.Printf("ttpd: audit log %s had a torn tail from a crash; truncated", *auditPath)
		}
		server.SetAuditLog(audit)
		prev := cleanup
		cleanup = func() { audit.Close(); prev() }
	}

	if journal != nil {
		rep, err := server.Recover(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, "ttpd: journal recovery:", err)
			cleanup()
			os.Exit(1)
		}
		log.Printf("ttpd: recovered %d journal records across %d txns (%d resolves left open, torn tail: %v)",
			rep.Records, len(rep.Transactions), len(rep.OpenResolves), rep.TornTail)
		log.Printf("ttpd: recovery bounded by snapshot at LSN %d: %d tail records replayed, %d archived resolves untouched (%d tail records skipped as archived)",
			rep.SnapshotLSN, rep.TailRecords, rep.ArchivedSessions, rep.SkippedArchived)
		for _, txn := range rep.OpenResolves {
			log.Printf("ttpd: resolve for %s was interrupted; the claimant will retry", txn)
		}
	}

	l, err := transport.ListenTCP(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttpd:", err)
		os.Exit(1)
	}
	log.Printf("ttpd: TTP %q listening on %s, peers %v", *name, l.Addr(), peers)

	var obsSrv *obshttp.Server
	if *obsAddr != "" {
		// /healthz degrades when the resolve journal can no longer accept
		// appends — or, replicated, can no longer reach its write quorum
		// — so an orchestrator routes claimants elsewhere.
		health := func() error {
			if journal != nil {
				if err := journal.Healthy(); err != nil {
					return err
				}
			}
			if replGroup != nil {
				if err := replGroup.Quorum(); err != nil {
					return fmt.Errorf("quorum: %w", err)
				}
			}
			return nil
		}
		obsSrv, err = obshttp.Start(*obsAddr, obs.Default(), health)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ttpd:", err)
			cleanup()
			os.Exit(1)
		}
		log.Printf("ttpd: observability endpoint on http://%s/metrics", obsSrv.Addr())
	}

	srv := core.NewServer(server,
		core.ServerLogger(events),
		core.ServerMaxInflight(*maxInflight),
		core.ServerConnPending(*connPending),
	)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *ckptEvery > 0 {
		go func() {
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					rep, err := server.Checkpoint()
					if err != nil {
						log.Printf("ttpd: checkpoint: %v", err)
						continue
					}
					log.Printf("ttpd: checkpoint at LSN %d (%d resolves archived, %d live retained)",
						rep.LSN, rep.Archived, rep.Retained)
				}
			}
		}()
	}

	// The public-auditor loop (DESIGN.md §14): every resolve that
	// relayed an NRR with a root commitment makes that session
	// auditable by the TTP, and this sweep challenges those providers
	// on the client's behalf. Failed audits land in the audit log and
	// leave the TTP holding a journaled unanswered challenge —
	// conviction material a claimant can subpoena later.
	if *auditEvery > 0 {
		go func() {
			tick := time.NewTicker(*auditEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					ok, failed := server.AuditStored(ctx, *auditN)
					if ok+failed > 0 {
						log.Printf("ttpd: public audit sweep: %d session(s) verified, %d FAILED", ok, failed)
					}
				}
			}
		}()
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), l) }()

	select {
	case err := <-done:
		if err != nil {
			log.Printf("ttpd: serve: %v", err)
			cleanup()
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Printf("ttpd: signal received, draining for up to %v", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("ttpd: shutdown: %v", err)
		}
		if obsSrv != nil {
			if err := obsSrv.Shutdown(sctx); err != nil {
				log.Printf("ttpd: observability shutdown: %v", err)
			}
		}
	}
	log.Printf("ttpd: stopped")
}
