// Command attacklab runs the §5 attack gauntlet — man-in-the-middle,
// reflection, interleaving, replay, timeliness — against both the TPNR
// deployment and the naive MD5-only baseline, and prints the matrix.
package main

import (
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/metrics"
)

func main() {
	outcomes, err := attack.Gauntlet()
	if err != nil {
		fmt.Fprintln(os.Stderr, "attacklab:", err)
		os.Exit(1)
	}
	tb := metrics.NewTable("attack gauntlet", "attack", "target", "attacker succeeded", "detail")
	failures := 0
	for _, o := range outcomes {
		tb.AddRow(o.Attack, o.Target, o.Succeeded, o.Detail)
		if o.Target == "TPNR" && o.Succeeded {
			failures++
		}
	}
	fmt.Println(tb.String())
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "attacklab: %d attack(s) SUCCEEDED against TPNR\n", failures)
		os.Exit(1)
	}
	fmt.Println("all attacks prevented by TPNR; all attacks succeeded against the naive baseline")
}
