// Command attacklab runs the attack gauntlet — the §5 adversaries
// (man-in-the-middle, reflection, interleaving, replay, timeliness)
// plus the storage-dwell lazy provider of DESIGN.md §14 — against both
// the TPNR deployment and the naive MD5-only baseline, and prints the
// matrix. The lazy-provider scenario ends in an off-line arbitrator
// conviction built from journaled audit evidence alone: no download.
package main

import (
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/metrics"
)

func main() {
	outcomes, err := attack.Gauntlet()
	if err != nil {
		fmt.Fprintln(os.Stderr, "attacklab:", err)
		os.Exit(1)
	}
	tb := metrics.NewTable("attack gauntlet", "attack", "target", "attacker succeeded", "detail")
	failures := 0
	for _, o := range outcomes {
		tb.AddRow(o.Attack, o.Target, o.Succeeded, o.Detail)
		if o.Target == "TPNR" && o.Succeeded {
			failures++
		}
	}
	fmt.Println(tb.String())
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "attacklab: %d attack(s) SUCCEEDED against TPNR\n", failures)
		os.Exit(1)
	}
	fmt.Println("all attacks prevented by TPNR; all attacks succeeded against the naive baseline")
}
